package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"aspen/internal/arch"
	"aspen/internal/lang"
	"aspen/internal/telemetry"
	"aspen/internal/verify"
)

// responseBytes canonicalizes a ParseResponse for byte-identity
// comparison: latency fields and lexer scan cycles are zeroed (wall
// time is nondeterministic; scan work legitimately changes when
// recovery replays coalesce chunk boundaries), everything else must
// survive marshaling bit-for-bit.
func responseBytes(t *testing.T, pr ParseResponse) []byte {
	t.Helper()
	pr.LexScanCycles = 0
	pr.QueueNS = 0
	pr.ParseNS = 0
	b, err := json.Marshal(pr)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// jsonWide builds a flat n-element document: lots of tokens (fault
// exposure) at constant stack depth.
func jsonWide(n int) []byte {
	var b bytes.Buffer
	b.WriteString(`{"key": [`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, `%d`, i)
	}
	b.WriteString(`], "tail": "x"}`)
	return b.Bytes()
}

// TestChaosTransientByteIdentical is the headline chaos property:
// concurrent chunked parses on a fabric injecting transient faults
// produce responses byte-identical to a fault-free server's — faults
// cost retries (visible in metrics), never answers. Detection is
// entirely the verify layer's (redundant execution + scrubbing): the
// serving path never reads the injector, whose counters appear below
// only as test-side ground truth that faults really fired.
func TestChaosTransientByteIdentical(t *testing.T) {
	langs := []*lang.Language{lang.JSON(), lang.XML()}
	_, clean := newTestServer(t, Options{Languages: langs})

	type tc struct {
		grammar string
		doc     []byte
	}
	cases := []tc{
		{"JSON", jsonDoc(10)},
		{"JSON", jsonDoc(40)},
		// Wide, not deep: volume raises the injected-fault count, but deep
		// nesting would overflow the 256-deep stack, and that error string
		// embeds a compiled state ID that is not stable across separately
		// compiled servers (two *clean* servers differ on it too).
		{"JSON", jsonWide(150)},
		{"JSON", []byte(`{"truncated": [`)}, // rejected input: verdict must also be fault-free
		{"XML", xmlDoc(8)},
		{"XML", xmlDoc(30)},
		{"XML", xmlDoc(60)},
		{"XML", []byte(`<a><b></a>`)},
	}
	want := make([][]byte, len(cases))
	for i, c := range cases {
		resp, pr := postWhole(t, clean, c.grammar, c.doc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("clean case %d: status %d", i, resp.StatusCode)
		}
		want[i] = responseBytes(t, pr)
	}

	// The engine selector must not perturb any of this: guarded parses
	// run the simulator regardless (counted as fallback reason "chaos"
	// when the fast path was configured), so the byte-identity property
	// holds under either flag value.
	for _, engSel := range []string{EngineFast, EngineSim} {
		for _, mode := range []verify.Mode{verify.ModeDMR, verify.ModeTMR} {
			t.Run(mode.String()+"_"+engSel, func(t *testing.T) {
				chaosSrv, chaos := newTestServer(t, Options{
					Languages: langs,
					Engine:    engSel,
					// Calibration: activations ≈ 2/byte/replica, so a ≤256-byte
					// replay window corrupts a given replica with p ≈ 0.4 at rate
					// 1e-3. DMR rolls back on any single corruption (window fails
					// ≈ 0.64), TMR arbitrates singles and only rolls back on ≥2;
					// 30 attempts make exhaustion vanishingly unlikely either way.
					Chaos: &ChaosOptions{
						FaultRate:        1e-3,
						FaultSeed:        0xC4A0_5EED,
						CheckpointBytes:  256,
						MaxAttempts:      30,
						BackoffBase:      50 * time.Microsecond,
						BackoffCap:       2 * time.Millisecond,
						BreakerThreshold: -1, // exhaustion is the failure under test, not shedding
						Verify:           mode,
					},
				})

				const clients = 8
				var wg sync.WaitGroup
				errs := make(chan error, clients*len(cases))
				for w := 0; w < clients; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i, c := range cases {
							chunk := 3 + (w+i)%11
							resp, got := postChunked(t, chaos, c.grammar, c.doc, chunk)
							if resp.StatusCode != http.StatusOK {
								errs <- fmt.Errorf("client %d case %d: status %d", w, i, resp.StatusCode)
								continue
							}
							if gb := responseBytes(t, got); !bytes.Equal(gb, want[i]) {
								errs <- fmt.Errorf("client %d case %d: corrupted answer accepted:\nchaos %s\nclean %s", w, i, gb, want[i])
							}
						}
					}(w)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					t.Error(err)
				}

				// The run must actually have exercised the machinery: faults
				// fired (ground truth) and the detectors both caught corruption
				// (verify_* series) and recovered it.
				snap := chaosSrv.Registry().Snapshot()
				faults := snap.Counters["serve_JSON_fault_flips_total"] + snap.Counters["serve_JSON_fault_stuck_total"] +
					snap.Counters["serve_XML_fault_flips_total"] + snap.Counters["serve_XML_fault_stuck_total"]
				if faults == 0 {
					t.Error("no transient faults fired — the chaos run tested nothing")
				}
				detected := snap.Counters["serve_JSON_verify_divergences_total"] + snap.Counters["serve_XML_verify_divergences_total"] +
					snap.Counters["serve_JSON_verify_votes_total"] + snap.Counters["serve_XML_verify_votes_total"] +
					snap.Counters["serve_JSON_verify_scrub_failures_total"] + snap.Counters["serve_XML_verify_scrub_failures_total"]
				if detected == 0 {
					t.Error("faults fired but no detector counter moved")
				}
				if mode == verify.ModeTMR {
					if snap.Counters["serve_JSON_verify_votes_total"]+snap.Counters["serve_XML_verify_votes_total"] == 0 {
						t.Error("TMR run arbitrated nothing — majority voting untested")
					}
				}
				recoveries := snap.Counters["serve_JSON_recoveries_total"] + snap.Counters["serve_XML_recoveries_total"]
				if mode == verify.ModeDMR && recoveries == 0 {
					t.Error("faults fired but no recoveries recorded")
				}
				if snap.Counters["serve_JSON_recovery_exhausted_total"]+snap.Counters["serve_XML_recovery_exhausted_total"] > 0 {
					t.Error("recovery exhausted during the transient-fault run (rate/attempts miscalibrated)")
				}
				// Every guarded request must be tallied as a simulator
				// fallback under the reason the configuration implies.
				reason := "chaos"
				if engSel == EngineSim {
					reason = "config"
				}
				fbName := telemetry.LabeledName("engine_fallback_total", "reason", reason)
				if got := snap.Counters[fbName]; got == 0 {
					t.Errorf("%s = 0: guarded parses were not counted as simulator fallbacks", fbName)
				}
			})
		}
	}
}

// TestChaosBankKillDegradation pins the degradation story end to end:
// killing banks shrinks the owning grammar's worker pool to exactly the
// surviving capacity (floor one), healthz reports degraded with 200,
// a mid-flight request whose bank dies under it recovers and answers
// correctly, and a burst still completes on the shrunken pool.
func TestChaosBankKillDegradation(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Languages: []*lang.Language{lang.JSON()},
		Chaos:     &ChaosOptions{FaultSeed: 7}, // rate 0: kills only
	})
	g := s.grammar("JSON")
	per := g.cap.BanksPerContext
	share := g.bankHi - g.bankLo
	if g.effectiveWorkers() != g.workers {
		t.Fatalf("pre-kill effective workers %d != %d", g.effectiveWorkers(), g.workers)
	}

	health := func() (int, HealthResponse) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}
	if code, h := health(); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthy fabric: code %d status %q", code, h.Status)
	}

	// A request in flight while its bank dies must recover, not corrupt.
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", ts.URL+"/v1/parse/JSON", pr)
	if err != nil {
		t.Fatal(err)
	}
	req.ContentLength = -1
	inflight := make(chan ParseResponse, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			inflight <- ParseResponse{Error: err.Error()}
			return
		}
		defer resp.Body.Close()
		var out ParseResponse
		_ = json.NewDecoder(resp.Body).Decode(&out)
		inflight <- out
	}()
	if _, err := pw.Write([]byte(`{"a": [1, 2, `)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Registry().Snapshot().Gauges["serve_inflight"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !s.KillBank(g.bankLo) {
		t.Fatal("first kill failed")
	}
	if _, err := pw.Write([]byte(`3], "b": "x"}`)); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	out := <-inflight
	if !out.Accepted || out.Error != "" {
		t.Fatalf("mid-flight kill: %+v", out)
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["serve_JSON_fault_kills_total"] < 1 {
		t.Errorf("mid-flight bank loss not detected: kills=%d", snap.Counters["serve_JSON_fault_kills_total"])
	}
	if snap.Counters["serve_JSON_recoveries_total"] < 1 {
		t.Error("mid-flight bank loss not recovered")
	}

	// Proportional degradation: after killing k banks the worker pool is
	// exactly the capacity of a share-minus-k fabric.
	killed := 1 // the mid-flight kill above
	for _, k := range []int{per, 3 * per} {
		for killed < k {
			if s.KillNextBank() < 0 {
				t.Fatal("fabric exhausted early")
			}
			killed++
		}
		wantWorkers := arch.CapacityFor(share-killed, per).Contexts
		if g.workers < wantWorkers {
			wantWorkers = g.workers
		}
		if got := g.effectiveWorkers(); got != wantWorkers {
			t.Errorf("after %d kills: effective workers %d, want %d", killed, got, wantWorkers)
		}
		code, h := health()
		if code != http.StatusOK || h.Status != "degraded" {
			t.Errorf("degraded fabric: code %d status %q, want 200 %q", code, h.Status, "degraded")
		}
		if h.LiveBanks != s.fabric.Live() || h.EffectiveWorkers["JSON"] != g.effectiveWorkers() {
			t.Errorf("healthz fabric accounting: %+v", h)
		}
	}

	// Total loss: the pool floors at one slot and the tenant still
	// answers — degraded, not dead.
	for s.KillNextBank() >= 0 {
	}
	if got := g.effectiveWorkers(); got != 1 {
		t.Errorf("fully dead fabric: effective workers %d, want floor 1", got)
	}
	if _, h := health(); h.LiveBanks != 0 || h.Status != "degraded" {
		t.Errorf("fully dead fabric healthz: %+v", h)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, out := postWhole(t, ts, "JSON", []byte(`[1, [2, 3], {"k": "v"}]`))
			if resp.StatusCode != http.StatusOK || !out.Accepted {
				errs <- fmt.Errorf("burst on floor-1 pool: status %d accepted %v", resp.StatusCode, out.Accepted)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestChaosRecoveryExhaustionOpensBreaker drives the failure ladder: a
// saturating fault rate exhausts replay attempts (503), consecutive
// exhaustions open the breaker (immediate 503 + Retry-After), and after
// the cooldown a single probe is let through.
func TestChaosRecoveryExhaustionOpensBreaker(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Languages: []*lang.Language{lang.JSON()},
		Chaos: &ChaosOptions{
			FaultRate:        1, // every activation faults: unrecoverable
			FaultSeed:        3,
			MaxAttempts:      2,
			BackoffBase:      50 * time.Microsecond,
			BackoffCap:       time.Millisecond,
			BreakerThreshold: 2,
			BreakerCooldown:  150 * time.Millisecond,
			// TMR so the saturating corruption is actually *detected*
			// (independently corrupted replicas three-way split every
			// window) — the escalation ladder runs without any oracle.
			Verify: verify.ModeTMR,
		},
	})
	doc := []byte(`[1, 2, 3]`)
	for i := 0; i < 2; i++ {
		resp, _ := postWhole(t, ts, "JSON", doc)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("exhausted request %d: status %d, want 503", i, resp.StatusCode)
		}
	}
	snap := s.Registry().Snapshot()
	if snap.Counters["serve_JSON_recovery_exhausted_total"] != 2 {
		t.Errorf("recovery_exhausted = %d, want 2", snap.Counters["serve_JSON_recovery_exhausted_total"])
	}
	if snap.Counters["serve_JSON_breaker_opens_total"] != 1 || snap.Gauges["serve_JSON_breaker_open"] != 1 {
		t.Fatalf("breaker did not open after %d exhaustions: %+v", 2, snap.Counters)
	}

	// Open breaker: shed immediately, with a Retry-After hint.
	resp, _ := postWhole(t, ts, "JSON", doc)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-breaker status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("open-breaker 503 without Retry-After")
	}
	if got := s.Registry().Snapshot().Counters["serve_JSON_breaker_denied_total"]; got != 1 {
		t.Errorf("breaker_denied = %d, want 1", got)
	}

	// After the cooldown one probe runs (and fails again, reopening).
	time.Sleep(200 * time.Millisecond)
	resp, _ = postWhole(t, ts, "JSON", doc)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("probe status %d, want 503", resp.StatusCode)
	}
	snap = s.Registry().Snapshot()
	if snap.Counters["serve_JSON_recovery_exhausted_total"] != 3 {
		t.Errorf("probe did not execute: exhausted = %d, want 3", snap.Counters["serve_JSON_recovery_exhausted_total"])
	}
	if snap.Counters["serve_JSON_breaker_opens_total"] != 2 {
		t.Errorf("failed probe did not reopen: opens = %d, want 2", snap.Counters["serve_JSON_breaker_opens_total"])
	}

	// A half-open probe whose request exits without a verdict on fabric
	// health — here a context already canceled before the first byte —
	// must release the probe claim. Otherwise the probing flag wedges
	// and every later request is denied until process restart.
	time.Sleep(200 * time.Millisecond) // cooldown after the reopen above
	g := s.grammar("JSON")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, sysErr := g.parseGuarded(ctx, bytes.NewReader(doc), nil)
	if !errors.Is(sysErr, context.Canceled) {
		t.Fatalf("canceled probe: sysErr = %v, want context.Canceled", sysErr)
	}
	// The next request must become the new probe and actually execute
	// (it exhausts and reopens), not bounce off a leaked probing flag.
	resp, _ = postWhole(t, ts, "JSON", doc)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-abort probe status %d, want 503", resp.StatusCode)
	}
	snap = s.Registry().Snapshot()
	if snap.Counters["serve_JSON_recovery_exhausted_total"] != 4 {
		t.Errorf("probe wedged after aborted probe: exhausted = %d, want 4",
			snap.Counters["serve_JSON_recovery_exhausted_total"])
	}
	if snap.Counters["serve_JSON_breaker_denied_total"] != 1 {
		t.Errorf("post-abort probe was denied: denied = %d, want still 1",
			snap.Counters["serve_JSON_breaker_denied_total"])
	}

	// Healthy tenants are unaffected by this one's breaker: the fabric
	// still reports every provisioned bank alive.
	if code, _ := func() (int, error) {
		r, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			return 0, err
		}
		r.Body.Close()
		return r.StatusCode, nil
	}(); code != http.StatusOK {
		t.Errorf("healthz during breaker-open = %d, want 200", code)
	}
}

// TestChaosStackOverflowIs422: an input that overruns the provisioned
// stack depth is the *client's* problem — a deterministic, replicated
// rejection. It must answer 422, count only parse_rejected_depth, and
// must not read as corruption: no replay retries, no error count, no
// breaker movement (replaying a deterministic overflow would reproduce
// it MaxAttempts times and then open the breaker for a healthy fabric).
func TestChaosStackOverflowIs422(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Languages: []*lang.Language{lang.JSON()},
		Chaos: &ChaosOptions{
			FaultSeed:        11, // rate 0: the overflow is the only event
			BreakerThreshold: 2,
			Verify:           verify.ModeTMR,
		},
	})
	deep := bytes.Repeat([]byte("["), 2048) // default depth budget is far smaller
	resp, _ := postWhole(t, ts, "JSON", deep)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("deep input: status %d, want 422", resp.StatusCode)
	}
	snap := s.Registry().Snapshot()
	if got := snap.Counters["serve_JSON_parse_rejected_depth_total"]; got != 1 {
		t.Errorf("parse_rejected_depth = %d, want 1", got)
	}
	if got := snap.Counters["serve_JSON_errors_total"]; got != 0 {
		t.Errorf("errors = %d, want 0 (a depth rejection is not a machine fault)", got)
	}
	if got := snap.Counters["serve_JSON_retries_total"]; got != 0 {
		t.Errorf("retries = %d, want 0 (deterministic rejection must not trigger replay)", got)
	}
	if got := snap.Counters["serve_JSON_breaker_opens_total"]; got != 0 {
		t.Errorf("breaker_opens = %d, want 0", got)
	}
	// The same tenant still serves normal documents afterwards.
	if resp, out := postWhole(t, ts, "JSON", []byte(`[1, [2, 3]]`)); resp.StatusCode != http.StatusOK || !out.Accepted {
		t.Fatalf("post-rejection parse: status %d accepted %v", resp.StatusCode, out.Accepted)
	}
}

// TestChaosTMRCapacityAccounting pins the cost side of redundant
// execution: a TMR unit occupies 3× the banks of a bare context, so the
// derived worker width shrinks accordingly, the replicas run on
// disjoint sub-ranges of the tenant's banks, and both /healthz and
// /v1/grammars surface the mode and replica count.
func TestChaosTMRCapacityAccounting(t *testing.T) {
	off, _ := newTestServer(t, Options{Languages: []*lang.Language{lang.JSON()}})
	s, ts := newTestServer(t, Options{
		Languages: []*lang.Language{lang.JSON()},
		Chaos:     &ChaosOptions{FaultSeed: 5, Verify: verify.ModeTMR},
	})
	g := s.grammar("JSON")
	per := g.cap.BanksPerContext
	share := g.bankHi - g.bankLo

	if g.replicas != 3 || g.unitBanks != 3*per {
		t.Fatalf("TMR unit shape: replicas=%d unitBanks=%d, want 3 and %d", g.replicas, g.unitBanks, 3*per)
	}
	want := arch.CapacityFor(share, 3*per).Contexts
	if g.workers != want {
		t.Errorf("TMR workers = %d, want %d (capacity at 3 contexts/unit)", g.workers, want)
	}
	if offW := off.grammar("JSON").workers; offW > 1 && g.workers >= offW {
		t.Errorf("TMR workers %d not below unguarded %d — redundancy cost invisible", g.workers, offW)
	}
	// Replica placement partitions the tenant's range: disjoint,
	// contiguous, fully covering.
	prev := g.bankLo
	for i := 0; i < g.replicas; i++ {
		lo, hi := g.replicaBanks(i)
		if lo != prev || hi <= lo || hi > g.bankHi {
			t.Fatalf("replica %d banks [%d,%d) break the partition of [%d,%d)", i, lo, hi, g.bankLo, g.bankHi)
		}
		prev = hi
	}
	if prev != g.bankHi {
		t.Fatalf("replica partition stops at %d, want %d", prev, g.bankHi)
	}

	// Surfacing: healthz carries the mode; the grammar listing carries
	// mode, replicas, and the (shrunken) worker width.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.VerifyMode != "tmr" {
		t.Errorf("healthz verifyMode = %q, want tmr", h.VerifyMode)
	}
	if h.EffectiveWorkers["JSON"] != g.workers {
		t.Errorf("healthz effectiveWorkers = %d, want %d", h.EffectiveWorkers["JSON"], g.workers)
	}
	resp, err = http.Get(ts.URL + "/v1/grammars")
	if err != nil {
		t.Fatal(err)
	}
	var infos []GrammarInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 1 || infos[0].VerifyMode != "tmr" || infos[0].Replicas != 3 || infos[0].Workers != g.workers {
		t.Errorf("grammar info %+v, want tmr/3 replicas/%d workers", infos, g.workers)
	}

	// And the guarded path still parses cleanly at rate 0.
	if resp, out := postWhole(t, ts, "JSON", []byte(`{"k": [1, 2, 3]}`)); resp.StatusCode != http.StatusOK || !out.Accepted {
		t.Fatalf("TMR clean parse: status %d accepted %v", resp.StatusCode, out.Accepted)
	}
}
