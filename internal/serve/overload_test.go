package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"testing"
	"time"

	"aspen/internal/lang"
	"aspen/internal/store"
	"aspen/internal/telemetry"
)

// latencyStream generates a deterministic mix of good and bad latency
// samples from a splitmix64 walk: roughly one sample in four exceeds
// the target.
func latencyStream(seed uint64, n int, targetNS int64) []int64 {
	out := make([]int64, n)
	z := seed
	for i := range out {
		z += 0x9e3779b97f4a7c15
		x := z
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
		if x%4 == 0 {
			out[i] = targetNS * 2 // bad sample
		} else {
			out[i] = targetNS / 4 // good sample
		}
	}
	return out
}

// TestAIMDDeterminism: the limiter's decision sequence is a pure
// function of the observation stream — two limiters fed the same
// seeded stream take identical trajectories, event for event.
func TestAIMDDeterminism(t *testing.T) {
	const target = 100 * time.Millisecond
	stream := latencyStream(42, 4096, target.Nanoseconds())
	a, b := newAIMD(target, 32), newAIMD(target, 32)
	for i, lat := range stream {
		ea, eb := a.observe(lat), b.observe(lat)
		if ea != eb {
			t.Fatalf("sample %d: event diverged: %v vs %v", i, ea, eb)
		}
		if la, lb := a.limitNow(), b.limitNow(); la != lb {
			t.Fatalf("sample %d: limit diverged: %d vs %d", i, la, lb)
		}
	}
	if a.current() != b.current() {
		t.Fatalf("final raw limit diverged: %v vs %v", a.current(), b.current())
	}
}

// TestAIMDConvergesToCeiling: property — from any disturbed state, a
// run of good samples restores the limit to the ceiling within the
// additive-increase bound (one +1 step per limit-many good samples, so
// at most ceiling² samples end to end).
func TestAIMDConvergesToCeiling(t *testing.T) {
	const target = 10 * time.Millisecond
	for seed := uint64(1); seed <= 25; seed++ {
		ceiling := int(2 + seed%31)
		a := newAIMD(target, ceiling)
		// Knock the limit down a seed-dependent number of times.
		for i := uint64(0); i < seed%13; i++ {
			a.observe(target.Nanoseconds() * 3)
		}
		budget := ceiling*ceiling + ceiling
		for i := 0; i < budget; i++ {
			a.observe(target.Nanoseconds() / 2)
		}
		if got := a.limitNow(); got != ceiling {
			t.Fatalf("seed %d: limit %d after %d good samples, want ceiling %d",
				seed, got, budget, ceiling)
		}
	}
}

// TestAIMDCollapseAtFloor: sustained bad samples halve the limit to
// the floor, and every bad sample thereafter reports collapse (the
// brownout trigger) while the limit holds at 1.
func TestAIMDCollapseAtFloor(t *testing.T) {
	const target = 10 * time.Millisecond
	a := newAIMD(target, 16)
	bad := target.Nanoseconds() * 2
	sawCollapse := false
	for i := 0; i < 32; i++ {
		ev := a.observe(bad)
		if a.limitNow() < 1 {
			t.Fatalf("limit fell below floor: %d", a.limitNow())
		}
		if ev == aimdCollapse {
			sawCollapse = true
		} else if sawCollapse {
			t.Fatalf("sample %d: event %v after collapse began", i, ev)
		}
	}
	if !sawCollapse {
		t.Fatal("limiter never collapsed under sustained bad samples")
	}
	if a.limitNow() != 1 {
		t.Fatalf("limit %d at floor, want 1", a.limitNow())
	}
}

// testFlow builds a detached scheduling flow for whitebox wfq tests.
func testFlow(reg *telemetry.Registry, name string, cost, weight int64) *wfqFlow {
	g := &grammarEntry{name: name, cost: cost}
	g.weight.Store(weight)
	g.m.overloadQueue = reg.Gauge("test_queue_"+name, "")
	return &wfqFlow{g: g}
}

// park spawns an acquire for f and waits until the scheduler has
// actually queued it, so grant order is deterministic. The returned
// channel yields once the grant lands (after which the waiter holds
// the token until proceed is closed).
func park(t *testing.T, q *wfq, f *wfqFlow, grants chan<- string, proceed <-chan struct{}) {
	t.Helper()
	q.mu.Lock()
	before := len(f.waiters)
	q.mu.Unlock()
	go func() {
		if err := q.acquire(context.Background(), f); err != nil {
			return
		}
		grants <- f.g.name
		<-proceed
		q.release()
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		q.mu.Lock()
		n := len(f.waiters)
		q.mu.Unlock()
		if n > before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestWFQFairness: with one execution token and a hot tenant four
// requests deep, a quiet tenant's two requests are served interleaved
// — not behind the hot tenant's whole backlog.
func TestWFQFairness(t *testing.T) {
	reg := telemetry.NewRegistry()
	q := newWFQ(newAIMD(time.Second, 1))
	hot := testFlow(reg, "hot", 4, 4)
	quiet := testFlow(reg, "quiet", 4, 4)

	if !q.tryAcquire(hot) {
		t.Fatal("fast path refused the first token")
	}
	grants := make(chan string, 8)
	proceed := make(chan struct{})
	for i := 0; i < 4; i++ {
		park(t, q, hot, grants, proceed)
	}
	park(t, q, quiet, grants, proceed)
	park(t, q, quiet, grants, proceed)

	// A backlogged scheduler must refuse the fast path.
	if q.tryAcquire(hot) {
		t.Fatal("fast path granted past a backlog")
	}

	close(proceed)
	q.release() // return the initial token; grants cascade
	var order []string
	for i := 0; i < 6; i++ {
		select {
		case g := <-grants:
			order = append(order, g)
		case <-time.After(5 * time.Second):
			t.Fatalf("grant %d never arrived (order so far %v)", i, order)
		}
	}
	want := []string{"hot", "quiet", "hot", "quiet", "hot", "hot"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

// TestWFQWeightedShare: doubling a tenant's weight halves its
// virtual-time charge, so it receives two grants for every one of an
// equal-cost competitor.
func TestWFQWeightedShare(t *testing.T) {
	reg := telemetry.NewRegistry()
	q := newWFQ(newAIMD(time.Second, 1))
	fast := testFlow(reg, "fast", 4, 8) // charge 0.5
	slow := testFlow(reg, "slow", 4, 4) // charge 1.0

	if !q.tryAcquire(slow) {
		t.Fatal("fast path refused the first token")
	}
	grants := make(chan string, 9)
	proceed := make(chan struct{})
	for i := 0; i < 6; i++ {
		park(t, q, fast, grants, proceed)
	}
	for i := 0; i < 3; i++ {
		park(t, q, slow, grants, proceed)
	}
	close(proceed)
	q.release()
	counts := map[string]int{}
	for i := 0; i < 6; i++ { // first six grants
		select {
		case g := <-grants:
			counts[g]++
		case <-time.After(5 * time.Second):
			t.Fatalf("grant %d never arrived", i)
		}
	}
	if counts["fast"] != 4 || counts["slow"] != 2 {
		t.Fatalf("first six grants split %v, want fast=4 slow=2", counts)
	}
	for i := 0; i < 3; i++ { // drain the rest
		<-grants
	}
}

// TestWFQCancellation: a canceled waiter leaves the queue cleanly and
// later grants skip it.
func TestWFQCancellation(t *testing.T) {
	reg := telemetry.NewRegistry()
	q := newWFQ(newAIMD(time.Second, 1))
	f := testFlow(reg, "only", 4, 4)
	if !q.tryAcquire(f) {
		t.Fatal("fast path refused the first token")
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- q.acquire(ctx, f) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		q.mu.Lock()
		n := len(f.waiters)
		q.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("canceled acquire returned %v", err)
	}
	q.mu.Lock()
	waiters, active := len(f.waiters), len(q.active)
	q.mu.Unlock()
	if waiters != 0 || active != 0 {
		t.Fatalf("canceled waiter left state behind: waiters=%d active=%d", waiters, active)
	}
	q.release()
	if !q.tryAcquire(f) {
		t.Fatal("token lost after cancellation")
	}
	q.release()
}

// TestDeadlineShed: once the tenant's ns/byte estimate is warm, a
// request whose predicted cost exceeds the request timeout is shed 429
// with a valid Retry-After — and an undeclared-length request is not.
func TestDeadlineShed(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Languages:      []*lang.Language{lang.JSON()},
		RequestTimeout: 2 * time.Second,
	})
	g := s.tenants.Load().byName["JSON"]
	// Warm the predictor to a ruinous 1s/byte.
	for i := 0; i < deadlineMinSamples; i++ {
		g.nsPerByte.Observe(1e9)
	}

	doc := jsonDoc(3)
	resp, _ := postWhole(t, ts, "JSON", doc)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("predicted-over-deadline request: status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Fatalf("shed Retry-After %q, want integer in [1,60]", resp.Header.Get("Retry-After"))
	}
	if got := s.m.shedTotal[shedDeadline].Value(); got != 1 {
		t.Fatalf("shed_total{reason=deadline} = %d, want 1", got)
	}

	// No declared length → no prediction basis → never deadline-shed.
	resp, pr := postChunked(t, ts, "JSON", doc, 7)
	if resp.StatusCode != http.StatusOK || !pr.Accepted {
		t.Fatalf("chunked request: status %d accepted %v, want 200 accepted", resp.StatusCode, pr.Accepted)
	}
}

// TestBrownoutLadder: limiter collapse raises the ladder, which sheds
// exactly the lowest-ranked tenant; recovery lowers it and service
// resumes. Brownout is opt-in — the same collapse with the flag off
// sheds nobody.
func TestBrownoutLadder(t *testing.T) {
	langs := []*lang.Language{lang.JSON(), lang.XML()}
	s, ts := newTestServer(t, Options{Languages: langs, Brownout: true})
	snap := s.tenants.Load()
	var shedFirst, protected *grammarEntry
	for _, n := range snap.names {
		g := snap.byName[n]
		if g.shedRank.Load() == 0 {
			shedFirst = g
		} else {
			protected = g
		}
	}
	if shedFirst == nil || protected == nil {
		t.Fatalf("shed ranks not assigned across %v", snap.names)
	}

	// Collapse: bad samples until the ladder engages.
	bad := (s.opts.LatencyTarget + time.Second).Nanoseconds()
	for i := 0; i < 64 && s.BrownoutLevel() == 0; i++ {
		s.observeParse(protected, bad, 0)
	}
	if s.BrownoutLevel() != 1 {
		t.Fatalf("brownout level %d after sustained collapse, want 1", s.BrownoutLevel())
	}

	doc := []byte(`{"k": [1]}`)
	if shedFirst.name == "XML" {
		doc = []byte(`<a>x</a>`)
	}
	resp, err := http.Post(ts.URL+"/v1/parse/"+shedFirst.name, "application/octet-stream", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("browned-out tenant: status %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 || ra > 60 {
		t.Fatalf("brownout Retry-After %q, want integer in [1,60]", resp.Header.Get("Retry-After"))
	}
	if got := s.m.shedTotal[shedBrownout].Value(); got != 1 {
		t.Fatalf("shed_total{reason=brownout} = %d, want 1", got)
	}
	// The protected tenant still parses.
	pdoc := []byte(`{"k": [1]}`)
	if protected.name == "XML" {
		pdoc = []byte(`<a>x</a>`)
	}
	resp, err = http.Post(ts.URL+"/v1/parse/"+protected.name, "application/octet-stream", bytes.NewReader(pdoc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("protected tenant during brownout: status %d, want 200", resp.StatusCode)
	}

	// Recovery: good samples walk the limit back up; the first additive
	// increase lowers the ladder.
	good := int64(1)
	for i := 0; i < 64 && s.BrownoutLevel() > 0; i++ {
		s.observeParse(protected, good, 0)
	}
	if s.BrownoutLevel() != 0 {
		t.Fatalf("brownout level %d after recovery, want 0", s.BrownoutLevel())
	}

	// Same collapse with brownout off: nobody is shed.
	s2, ts2 := newTestServer(t, Options{Languages: langs})
	g2 := s2.tenants.Load().byName["JSON"]
	for i := 0; i < 64; i++ {
		s2.observeParse(g2, bad, 0)
	}
	if s2.BrownoutLevel() != 0 {
		t.Fatalf("brownout engaged without the flag: level %d", s2.BrownoutLevel())
	}
	resp, err = http.Post(ts2.URL+"/v1/parse/JSON", "application/octet-stream", bytes.NewReader([]byte(`{"k": [1]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("collapse without brownout: status %d, want 200", resp.StatusCode)
	}
}

// TestWeightOpAndReplay: the admin weight op validates, applies, and
// journals; a restart over the same store replays the override.
func TestWeightOpAndReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Options{Languages: []*lang.Language{lang.JSON()}, Store: st})

	post := func(body string) (*http.Response, AdminResponse) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/admin/grammars", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ar AdminResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
				t.Fatal(err)
			}
		}
		return resp, ar
	}

	resp, ar := post(`{"op": "weight", "grammar": "JSON", "weight": 7}`)
	if resp.StatusCode != http.StatusOK || ar.Weight != 7 {
		t.Fatalf("weight op: status %d weight %d, want 200/7", resp.StatusCode, ar.Weight)
	}
	if got := s.tenants.Load().byName["JSON"].weight.Load(); got != 7 {
		t.Fatalf("live weight %d, want 7", got)
	}
	if resp, _ := post(`{"op": "weight", "grammar": "JSON", "weight": 0}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("weight 0: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := post(`{"op": "weight", "grammar": "nope", "weight": 3}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown grammar: status %d, want 404", resp.StatusCode)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2, _ := newTestServer(t, Options{Languages: []*lang.Language{lang.JSON()}, Store: st2})
	if got := s2.tenants.Load().byName["JSON"].weight.Load(); got != 7 {
		t.Fatalf("replayed weight %d, want 7", got)
	}
}

// TestGrayFaultInjection: arming the chaos layer's gray fault routes
// injected stalls through the simulator's activation path and counts
// them on fault_delays_total. Delay zero keeps the test instant — the
// counter, not the wall clock, proves the wiring.
func TestGrayFaultInjection(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Languages: []*lang.Language{lang.JSON()},
		Chaos:     &ChaosOptions{GrayRate: 1, GrayDelay: 0},
	})
	resp, pr := postWhole(t, ts, "JSON", []byte(`{"k": [1, 2]}`))
	if resp.StatusCode != http.StatusOK || !pr.Accepted {
		t.Fatalf("guarded parse under gray fault: status %d accepted %v", resp.StatusCode, pr.Accepted)
	}
	g := s.tenants.Load().byName["JSON"]
	if g.m.faultDelays.Value() == 0 {
		t.Fatal("fault_delays_total never incremented with GrayRate=1")
	}
}

// TestAdmitCycleAllocs pins the full admission decision — snapshot
// lookup, waiting-room ticket, shed checks, weighted-fair fast path —
// at zero heap allocations, the budget the steady-state parse path's
// own pin (alloc_test.go) depends on.
func TestAdmitCycleAllocs(t *testing.T) {
	s, _ := newTestServer(t, Options{Languages: []*lang.Language{lang.JSON()}})
	if err := s.BenchAdmitCycle("JSON", 64); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := s.BenchAdmitCycle("JSON", 64); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("admission decision allocates %.1f per request, want 0", allocs)
	}
}
