package serve

import "aspen/internal/telemetry"

// Request latency buckets in nanoseconds: 1 µs … ~4.3 s, ×4 per step.
var requestNSBuckets = telemetry.ExponentialBuckets(1e3, 4, 12)

// serviceMetrics are the global (grammar-independent) series. All are
// resolved once at construction so the request path touches atomics
// only.
type serviceMetrics struct {
	requests  *telemetry.Counter
	throttled *telemetry.Counter
	timeouts  *telemetry.Counter
	canceled  *telemetry.Counter
	drainDeny *telemetry.Counter
	compiles  *telemetry.Counter
	inflight  *telemetry.Gauge
	draining  *telemetry.Gauge
	requestNS *telemetry.Histogram
}

func newServiceMetrics(reg *telemetry.Registry) serviceMetrics {
	return serviceMetrics{
		requests:  reg.Counter("serve_requests_total", "parse requests admitted past routing"),
		throttled: reg.Counter("serve_throttled_total", "requests answered 429 (admission queue full)"),
		timeouts:  reg.Counter("serve_timeouts_total", "requests that exceeded the request deadline"),
		canceled:  reg.Counter("serve_canceled_total", "requests abandoned by the client"),
		drainDeny: reg.Counter("serve_drain_denied_total", "requests refused 503 while draining"),
		compiles:  reg.Counter("serve_compiles_total", "grammar→hDPDA compiles (startup only; flat at steady state)"),
		inflight:  reg.Gauge("serve_inflight", "requests currently admitted (queued or parsing)"),
		draining:  reg.Gauge("serve_draining", "1 while Drain is in progress or complete"),
		requestNS: reg.Histogram("serve_request_ns", "end-to-end request latency (ns), queue wait included", requestNSBuckets),
	}
}

// grammarMetrics are the per-tenant, per-outcome series. The registry
// has no label dimension, so the grammar name is folded into the series
// name (sanitized), mirroring the bench tables' convention.
type grammarMetrics struct {
	requests  *telemetry.Counter
	accepted  *telemetry.Counter
	rejected  *telemetry.Counter // parse completed: input not in the language
	errors    *telemetry.Counter // input unlexable or machine fault
	bytes     *telemetry.Counter
	tokens    *telemetry.Counter
	queueLen  *telemetry.Gauge
	requestNS *telemetry.Histogram
}

func newGrammarMetrics(reg *telemetry.Registry, grammar string) grammarMetrics {
	p := "serve_" + telemetry.SanitizeMetricName(grammar) + "_"
	return grammarMetrics{
		requests:  reg.Counter(p+"requests_total", "parse requests for grammar "+grammar),
		accepted:  reg.Counter(p+"accepted_total", "inputs accepted by the "+grammar+" hDPDA"),
		rejected:  reg.Counter(p+"rejected_total", "inputs rejected (jam or non-accepting end state)"),
		errors:    reg.Counter(p+"errors_total", "inputs that failed before the machine answered (lex error, machine fault)"),
		bytes:     reg.Counter(p+"bytes_total", "request body bytes streamed into the parser"),
		tokens:    reg.Counter(p+"tokens_total", "tokens fed to the "+grammar+" hDPDA"),
		queueLen:  reg.Gauge(p+"queue_depth", "admission tickets held (running + waiting)"),
		requestNS: reg.Histogram(p+"request_ns", "per-request latency (ns) for grammar "+grammar, requestNSBuckets),
	}
}
