package serve

import (
	"strconv"

	"aspen/internal/admit"
	"aspen/internal/telemetry"
)

// Request latency buckets in nanoseconds: 1 µs … ~4.3 s, ×4 per step.
var requestNSBuckets = telemetry.ExponentialBuckets(1e3, 4, 12)

// Phase latency buckets: 100 ns … ~6.7 s, ×4 per step. Phases start
// finer than whole requests — a checkpoint seal or a response encode is
// sub-microsecond work worth resolving.
var phaseNSBuckets = telemetry.ExponentialBuckets(100, 4, 14)

// errorCodes are the statuses pre-registered per grammar on
// serve_errors_total{grammar=...,code=...}. Codes outside this set (and
// errors with no routed grammar) fall back to the server-level series;
// see Server.countError.
var errorCodes = []int{400, 409, 410, 413, 422, 429, 500, 503, 504}

func errorCounters(reg *telemetry.Registry, labels ...string) map[int]*telemetry.Counter {
	m := make(map[int]*telemetry.Counter, len(errorCodes))
	for _, code := range errorCodes {
		kv := append(append([]string{}, labels...), "code", strconv.Itoa(code))
		m[code] = reg.Counter(telemetry.LabeledName("serve_errors_total", kv...),
			"non-2xx responses by status code")
	}
	return m
}

// countError attributes one non-2xx response to its grammar's
// serve_errors_total{code=...} series (the server-level series when
// routing never resolved a grammar, or for a code outside the
// pre-registered set). Pre-resolved counters keep the common paths
// allocation-free; the lazy fallback pays a registry lookup only on
// exotic codes.
func (s *Server) countError(g *grammarEntry, code int) {
	if g != nil {
		if c := g.m.errByCode[code]; c != nil {
			c.Inc()
			return
		}
	}
	if c := s.m.errByCode[code]; c != nil {
		c.Inc()
		return
	}
	s.reg.Counter(telemetry.LabeledName("serve_errors_total", "code", strconv.Itoa(code)),
		"non-2xx responses by status code").Inc()
}

// serviceMetrics are the global (grammar-independent) series. All are
// resolved once at construction so the request path touches atomics
// only.
type serviceMetrics struct {
	requests  *telemetry.Counter
	throttled *telemetry.Counter
	timeouts  *telemetry.Counter
	canceled  *telemetry.Counter
	drainDeny *telemetry.Counter
	compiles  *telemetry.Counter
	inflight  *telemetry.Gauge
	draining  *telemetry.Gauge
	degraded  *telemetry.Gauge
	requestNS *telemetry.Histogram

	// Overload-control series (overload.go): sheds by reason, and the
	// AIMD limit currently in force.
	shedTotal    map[string]*telemetry.Counter
	limitCurrent *telemetry.Gauge

	// Durable-control-plane series (admin.go, session.go, store wiring).
	// Registered unconditionally: flat zeros without -state-dir.
	journalAppends  *telemetry.Counter
	reloadSwaps     *telemetry.Counter
	ckptCorrupt     *telemetry.Counter
	journalReplay   *telemetry.Gauge
	journalCommitNS *telemetry.Histogram

	// Fast-path dispatch series (engine.go). Registered unconditionally:
	// flat zeros under -engine=sim keep dashboards stable either way.
	engine engineMetrics

	// Upload-admission verdicts (admin.go): admissions by format,
	// rejections by the check that fired. Pre-registered over the full
	// check/format vocabulary so a zero-rejection deployment still
	// exports every series.
	admitAdmitted map[string]*telemetry.Counter
	admitRejected map[string]*telemetry.Counter

	// errByCode counts non-2xx answers with no routed grammar (404
	// unknown grammar, 503 drain denial); see countError.
	errByCode map[int]*telemetry.Counter
}

// engineMetrics are the fast-path dispatch series: wave occupancy for
// the lockstep batcher, and the simulator-fallback tallies by reason.
type engineMetrics struct {
	occupancy *telemetry.Gauge   // lanes in the most recent wave
	batches   *telemetry.Counter // waves run
	lanes     *telemetry.Counter // lane-chunks across all waves (lanes/batches = mean occupancy)

	fbConfig  *telemetry.Counter // -engine=sim pinned the request to the simulator
	fbChaos   *telemetry.Counter // guarded parse: detection needs execution hooks
	fbCompile *telemetry.Counter // machine could not be lowered to engine tables
}

// observe records one completed wave.
func (em *engineMetrics) observe(lanes int) {
	em.occupancy.SetInt(int64(lanes))
	em.batches.Inc()
	em.lanes.Add(int64(lanes))
}

func newEngineMetrics(reg *telemetry.Registry) engineMetrics {
	fb := func(reason string) *telemetry.Counter {
		return reg.Counter(telemetry.LabeledName("engine_fallback_total", "reason", reason),
			"requests served by the simulator instead of the fast-path engine, by reason")
	}
	return engineMetrics{
		occupancy: reg.Gauge("engine_batch_occupancy", "lanes in the most recent fast-path batch wave"),
		batches:   reg.Counter("engine_batches_total", "fast-path lockstep waves run"),
		lanes:     reg.Counter("engine_batch_lanes_total", "lane-chunks executed across all fast-path waves"),
		fbConfig:  fb("config"),
		fbChaos:   fb("chaos"),
		fbCompile: fb("compile"),
	}
}

func newServiceMetrics(reg *telemetry.Registry) serviceMetrics {
	return serviceMetrics{
		requests:  reg.Counter("serve_requests_total", "parse requests admitted past routing"),
		throttled: reg.Counter("serve_throttled_total", "requests answered 429 (admission queue full)"),
		timeouts:  reg.Counter("serve_timeouts_total", "requests that exceeded the request deadline"),
		canceled:  reg.Counter("serve_canceled_total", "requests abandoned by the client"),
		drainDeny: reg.Counter("serve_drain_denied_total", "requests refused 503 while draining"),
		compiles:  reg.Counter("serve_compiles_total", "grammar→hDPDA compiles (startup only; flat at steady state)"),
		inflight:  reg.Gauge("serve_inflight", "requests currently admitted (queued or parsing)"),
		draining:  reg.Gauge("serve_draining", "1 while Drain is in progress or complete"),
		degraded:  reg.Gauge("serve_degraded", "1 once any fabric bank has been lost"),
		requestNS: reg.Histogram("serve_request_ns", "end-to-end request latency (ns), queue wait included", requestNSBuckets),

		shedTotal: admitCounters(reg, "shed_total", "reason", shedReasons,
			"requests shed 429 by the overload layer, by reason"),
		limitCurrent: reg.Gauge("limit_current", "AIMD adaptive concurrency limit currently in force"),

		journalAppends:  reg.Counter("journal_appends_total", "registry mutation records fsync'd to the write-ahead journal"),
		reloadSwaps:     reg.Counter("reload_swaps_total", "atomic registry snapshot swaps (admin mutations and SIGHUP reloads)"),
		ckptCorrupt:     reg.Counter("checkpoint_store_corrupt_total", "stored session checkpoints refused by their integrity seals"),
		journalReplay:   reg.Gauge("journal_replay_records", "journal records replayed at the last startup"),
		journalCommitNS: reg.Histogram("serve_journal_commit_ns", "write-ahead journal append+fsync latency (ns)", phaseNSBuckets),

		engine: newEngineMetrics(reg),

		admitAdmitted: admitCounters(reg, "admit_admitted_total", "format",
			admit.Formats(), "tenant uploads admitted to the registry, by source format"),
		admitRejected: admitCounters(reg, "admit_rejected_total", "check",
			admit.Checks(), "tenant uploads rejected at admission, by the check that fired"),

		errByCode: errorCounters(reg),
	}
}

func admitCounters(reg *telemetry.Registry, name, label string, values []string, help string) map[string]*telemetry.Counter {
	m := make(map[string]*telemetry.Counter, len(values))
	for _, v := range values {
		m[v] = reg.Counter(telemetry.LabeledName(name, label, v), help)
	}
	return m
}

// countRejection attributes one admission rejection to the first
// diagnostic's check series.
func (s *Server) countRejection(rej *admit.Rejection) {
	check := "unknown"
	if len(rej.Diagnostics) > 0 {
		check = rej.Diagnostics[0].Check
	}
	if c := s.m.admitRejected[check]; c != nil {
		c.Inc()
		return
	}
	s.reg.Counter(telemetry.LabeledName("admit_rejected_total", "check", check),
		"tenant uploads rejected at admission, by the check that fired").Inc()
}

// grammarMetrics are the per-tenant, per-outcome series. The registry
// has no label dimension, so the grammar name is folded into the series
// name (sanitized), mirroring the bench tables' convention.
type grammarMetrics struct {
	requests  *telemetry.Counter
	accepted  *telemetry.Counter
	rejected  *telemetry.Counter // parse completed: input not in the language
	errors    *telemetry.Counter // input unlexable or machine fault
	bytes     *telemetry.Counter
	tokens    *telemetry.Counter
	queueLen  *telemetry.Gauge
	requestNS *telemetry.Histogram

	// overloadQueue is this tenant's weighted-fair backlog depth
	// (tenant_queue_depth{grammar=} — requests parked waiting for an
	// execution token, distinct from queueLen's admission tickets).
	overloadQueue *telemetry.Gauge

	// Span-phase latency attribution (trace.go): one histogram per
	// lifecycle phase, serve_phase_ns{grammar=...,phase=...}. Resolved
	// once here so recording a span touches atomics only.
	phaseNS [numPhases]*telemetry.Histogram
	// errByCode counts this grammar's non-2xx answers on
	// serve_errors_total{grammar=...,code=...}.
	errByCode map[int]*telemetry.Counter

	// Recovery-layer series (chaos.go). Registered unconditionally —
	// flat zeros on a healthy fabric cost nothing and keep dashboards
	// stable across deployments with and without injection.
	faultFlips        *telemetry.Counter
	faultStuck        *telemetry.Counter
	faultKills        *telemetry.Counter
	faultDelays       *telemetry.Counter
	retries           *telemetry.Counter
	checkpoints       *telemetry.Counter
	recoveries        *telemetry.Counter
	recoveryExhausted *telemetry.Counter
	breakerOpens      *telemetry.Counter
	breakerDenied     *telemetry.Counter
	breakerOpen       *telemetry.Gauge
	workersEffective  *telemetry.Gauge

	// Oracle-free detection series (internal/verify). The fault_* series
	// above are injection-side ground truth (published by the injector
	// itself); these are what the detectors actually caught — the gap
	// between the two is the recall the bench tables grade.
	verifyDivergences *telemetry.Counter
	verifyVotes       *telemetry.Counter
	verifyScrubFail   *telemetry.Counter
	checkpointCorrupt *telemetry.Counter
	rejectedDepth     *telemetry.Counter
}

func newGrammarMetrics(reg *telemetry.Registry, grammar string) grammarMetrics {
	p := "serve_" + telemetry.SanitizeMetricName(grammar) + "_"
	var phaseNS [numPhases]*telemetry.Histogram
	for i := range phaseNS {
		phaseNS[i] = reg.Histogram(
			telemetry.LabeledName("serve_phase_ns", "grammar", grammar, "phase", phaseNames[i]),
			"request lifecycle phase latency (ns), attributed by the request span",
			phaseNSBuckets)
	}
	return grammarMetrics{
		phaseNS:   phaseNS,
		errByCode: errorCounters(reg, "grammar", grammar),
		requests:  reg.Counter(p+"requests_total", "parse requests for grammar "+grammar),
		accepted:  reg.Counter(p+"accepted_total", "inputs accepted by the "+grammar+" hDPDA"),
		rejected:  reg.Counter(p+"rejected_total", "inputs rejected (jam or non-accepting end state)"),
		errors:    reg.Counter(p+"errors_total", "inputs that failed before the machine answered (lex error, machine fault)"),
		bytes:     reg.Counter(p+"bytes_total", "request body bytes streamed into the parser"),
		tokens:    reg.Counter(p+"tokens_total", "tokens fed to the "+grammar+" hDPDA"),
		queueLen:  reg.Gauge(p+"queue_depth", "admission tickets held (running + waiting)"),
		overloadQueue: reg.Gauge(telemetry.LabeledName("tenant_queue_depth", "grammar", grammar),
			"requests parked in the tenant's weighted-fair backlog"),
		requestNS: reg.Histogram(p+"request_ns", "per-request latency (ns) for grammar "+grammar, requestNSBuckets),

		faultFlips:        reg.Counter(p+"fault_flips_total", "injected active-state-vector bit flips"),
		faultStuck:        reg.Counter(p+"fault_stuck_total", "injected stuck-at stack-column faults"),
		faultKills:        reg.Counter(p+"fault_kills_total", "runs aborted by mid-run bank loss"),
		faultDelays:       reg.Counter(p+"fault_delays_total", "injected gray-failure latency stalls"),
		retries:           reg.Counter(p+"retries_total", "checkpoint replay attempts"),
		checkpoints:       reg.Counter(p+"checkpoints_total", "clean-progress checkpoints taken"),
		recoveries:        reg.Counter(p+"recoveries_total", "faulted runs recovered by replay"),
		recoveryExhausted: reg.Counter(p+"recovery_exhausted_total", "requests that failed after exhausting replay attempts"),
		breakerOpens:      reg.Counter(p+"breaker_opens_total", "circuit breaker open transitions"),
		breakerDenied:     reg.Counter(p+"breaker_denied_total", "requests shed by an open circuit breaker"),
		breakerOpen:       reg.Gauge(p+"breaker_open", "1 while the circuit breaker is open"),
		workersEffective:  reg.Gauge(p+"workers_effective", "worker slots backed by surviving banks"),

		verifyDivergences: reg.Counter(p+"verify_divergences_total", "replica digest divergences with no majority (window rolled back)"),
		verifyVotes:       reg.Counter(p+"verify_votes_total", "TMR majority arbitrations (minority replica repaired in place)"),
		verifyScrubFail:   reg.Counter(p+"verify_scrub_failures_total", "invariant violations found by the scrubber"),
		checkpointCorrupt: reg.Counter(p+"checkpoint_corrupt_total", "recovery checkpoints rejected by their integrity seal"),
		rejectedDepth:     reg.Counter(p+"parse_rejected_depth_total", "inputs rejected 422 for exceeding the configured stack depth"),
	}
}
