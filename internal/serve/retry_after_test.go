package serve

import (
	"testing"
	"time"

	"aspen/internal/lang"
)

func TestClampRetrySecs(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{-5, "1"},
		{0, "1"}, // the cold-start bug: an empty histogram must not emit 0
		{1, "1"},
		{42, "42"},
		{60, "60"},
		{61, "60"},
		{1 << 40, "60"},
	}
	for _, c := range cases {
		if got := clampRetrySecs(c.in); got != c.want {
			t.Errorf("clampRetrySecs(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestRetryAfterBounds pins the 429 hint at both ends: a cold server
// with no latency history answers at least 1 second, and a pathological
// backlog estimate is capped at maxRetryAfterSecs.
func TestRetryAfterBounds(t *testing.T) {
	s, err := New(Options{Languages: []*lang.Language{lang.JSON()}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := s.grammar("JSON")

	// Cold start: empty histogram, empty queue.
	if got := s.retryAfter(g); got != "1" {
		t.Errorf("cold-start Retry-After = %q, want %q", got, "1")
	}

	// A sub-second mean must round up to 1, never truncate to 0.
	g.m.requestNS.ObserveInt((50 * time.Millisecond).Nanoseconds())
	if err := g.admit(); err != nil {
		t.Fatal(err)
	}
	if got := s.retryAfter(g); got != "1" {
		t.Errorf("sub-second estimate Retry-After = %q, want %q", got, "1")
	}

	// A huge mean latency times a backlog is capped, not propagated.
	g.m.requestNS.ObserveInt((10 * time.Minute).Nanoseconds())
	if got := s.retryAfter(g); got != "60" {
		t.Errorf("pathological estimate Retry-After = %q, want %q", got, "60")
	}
	g.release()
}
