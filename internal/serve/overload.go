package serve

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"aspen/internal/store"
)

// Overload control. The bounded per-grammar admission queue (pool.go)
// protects one tenant's waiting room, but nothing before this layer
// protected the fabric itself: a single hot tenant could occupy every
// execution context while a quiet tenant's requests aged out behind it,
// and a latency regression (gray silicon, a pathological document mix)
// had no feedback path into admission at all. This file adds the three
// mechanisms the serving layer was missing, all driven by the machine
// cost model PR 9's admission analysis already proves:
//
//   - aimd: an adaptive global concurrency limit over parse execution.
//     Observed parse latency above the target halves the limit
//     (multiplicative decrease); a window of good samples raises it by
//     one (additive increase), back up to the fabric ceiling (the sum
//     of per-tenant worker widths). Decisions are a pure function of
//     the observation stream — seeded tests replay them exactly.
//
//   - wfq: a weighted-fair queue that arbitrates the limited execution
//     tokens across tenants. Each grant charges the tenant's flow
//     cost/weight in virtual time and the scheduler always serves the
//     lowest-virtual-time backlogged flow, so a flooding tenant queues
//     behind its own backlog while a quiet tenant's occasional request
//     dispatches almost immediately. Weights default to the machine's
//     proven cost (StackBound × engine TableBytes — see costOf), so
//     by default every tenant gets an equal request-rate share; an
//     operator can re-weight a tenant at runtime via the journaled
//     admin "weight" op.
//
//   - deadline shed + brownout: a request whose predicted cost (the
//     tenant's observed ns/byte EWMA × Content-Length) exceeds its
//     remaining deadline is answered 429+Retry-After at enqueue
//     instead of burning a context to time out mid-parse. When the
//     limiter collapses to its floor and stays there, the optional
//     brownout ladder (Options.Brownout) sheds whole tenants, lowest
//     effective weight first, until the limiter recovers.

// Overload defaults.
const (
	// DefaultLatencyTarget is the parse-latency target the AIMD limiter
	// steers toward when Options.LatencyTarget is zero.
	DefaultLatencyTarget = 500 * time.Millisecond
	// defaultStackBound stands in for built-in grammars, whose stack
	// depth is provisioned rather than proven at admission.
	defaultStackBound = 8
	// deadlineMinSamples gates deadline shedding on a warm ns/byte
	// estimate: a cold EWMA must not reject anything.
	deadlineMinSamples = 8
	// aimdDecreaseFactor is the multiplicative-decrease factor.
	aimdDecreaseFactor = 0.5
)

// aimdEvent reports what one observation did to the limit.
type aimdEvent int

const (
	aimdNone     aimdEvent = iota
	aimdIncrease           // additive increase fired
	aimdDecrease           // multiplicative decrease fired
	aimdCollapse           // a bad sample arrived with the limit already at floor
)

// aimd is the adaptive concurrency limiter. It is deliberately
// minimal: one mutex, integer-ish state, and a decision rule that
// depends only on the sequence of observed latencies — identical
// observation streams produce identical limit trajectories, which the
// determinism tests pin.
type aimd struct {
	mu       sync.Mutex
	targetNS int64
	floor    float64
	ceiling  float64
	limit    float64
	good     int
}

func newAIMD(target time.Duration, ceiling int) *aimd {
	if target <= 0 {
		target = DefaultLatencyTarget
	}
	c := float64(ceiling)
	if c < 1 {
		c = 1
	}
	return &aimd{targetNS: target.Nanoseconds(), floor: 1, ceiling: c, limit: c}
}

// observe folds one parse latency into the limit. A latency above
// target halves the limit (and reports collapse when already at floor);
// a window of limit-many good samples raises it by one toward the
// ceiling.
func (a *aimd) observe(latencyNS int64) aimdEvent {
	a.mu.Lock()
	defer a.mu.Unlock()
	if latencyNS > a.targetNS {
		a.good = 0
		if a.limit <= a.floor {
			return aimdCollapse
		}
		a.limit *= aimdDecreaseFactor
		if a.limit < a.floor {
			a.limit = a.floor
		}
		return aimdDecrease
	}
	a.good++
	if float64(a.good) >= a.limit {
		a.good = 0
		if a.limit < a.ceiling {
			a.limit++
			if a.limit > a.ceiling {
				a.limit = a.ceiling
			}
			return aimdIncrease
		}
	}
	return aimdNone
}

// limitNow is the integer concurrency ceiling currently in force.
func (a *aimd) limitNow() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := int(math.Floor(a.limit))
	if n < 1 {
		n = 1
	}
	return n
}

// current returns the raw (fractional) limit for the gauge.
func (a *aimd) current() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limit
}

// setCeiling re-derives the ceiling after a registry mutation changed
// the fabric partition. A limiter sitting at its (old) ceiling —
// uncollapsed — follows the new one directly; a collapsed limiter is
// only clamped down, and otherwise climbs back via additive increase.
func (a *aimd) setCeiling(ceiling int) {
	c := float64(ceiling)
	if c < 1 {
		c = 1
	}
	a.mu.Lock()
	if a.limit >= a.ceiling || a.limit > c {
		a.limit = c
	}
	a.ceiling = c
	a.mu.Unlock()
}

// wfqWaiter is one parked acquire: grant closes ch; cancellation
// removes the waiter under the scheduler lock (granted disambiguates
// the race between the two).
type wfqWaiter struct {
	ch      chan struct{}
	granted bool
}

// wfqFlow is one tenant's scheduling state. cost/weight give the
// virtual-time charge per grant; vt accumulates it. A flow whose vt
// fell behind while idle is clamped up to the global virtual time when
// it next contends — idleness banks no credit (the classic WFQ
// discipline; without the clamp a tenant could sleep, then burst past
// everyone at its stale vt).
type wfqFlow struct {
	g       *grammarEntry
	vt      float64
	waiters []*wfqWaiter
}

// charge is the virtual time one grant costs this flow.
func (f *wfqFlow) charge() float64 {
	w := float64(f.g.weight.Load())
	if w < 1 {
		w = 1
	}
	return float64(f.g.cost) / w
}

// wfq is the server-global execution-token scheduler: at most
// limiter.limitNow() requests hold a token; backlogged flows are
// served lowest virtual time first.
type wfq struct {
	limiter *aimd

	mu       sync.Mutex
	virt     float64
	inflight int
	active   []*wfqFlow // flows with ≥1 waiter
}

func newWFQ(limiter *aimd) *wfq { return &wfq{limiter: limiter} }

// grantLocked charges f and takes one token. No idle clamp here: a
// flow that stays backlogged must keep its accumulated charge between
// grants — that accumulation IS the weighting (clamping on every grant
// would reset the race each round and serve flows round-robin
// regardless of weight). The clamp lives at flow entry instead
// (enterLocked), where idleness must not bank credit.
func (q *wfq) grantLocked(f *wfqFlow) {
	f.vt += f.charge()
	if f.vt > q.virt {
		q.virt = f.vt
	}
	q.inflight++
}

// enterLocked clamps a flow's virtual time up to the global clock as
// it (re)enters contention: a tenant that slept earns no credit to
// burst past backlogged peers.
func (q *wfq) enterLocked(f *wfqFlow) {
	if f.vt < q.virt {
		f.vt = q.virt
	}
}

// tryAcquire is the contention-free fast path: with no backlog anywhere
// and headroom under the limit, the token is granted inline with zero
// allocations (the steady-state request path stays within its pinned
// budget). It fails — without queuing — when the scheduler would have
// to park the caller.
func (q *wfq) tryAcquire(f *wfqFlow) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.active) == 0 && q.inflight < q.limiter.limitNow() {
		q.enterLocked(f)
		q.grantLocked(f)
		return true
	}
	return false
}

// acquire takes one execution token for f, parking in f's FIFO backlog
// until the scheduler serves it or ctx ends. ctx is consulted via its
// Done channel only — acquire adds no deadline of its own.
func (q *wfq) acquire(ctx ctxDone, f *wfqFlow) error {
	q.mu.Lock()
	if len(q.active) == 0 && q.inflight < q.limiter.limitNow() {
		q.enterLocked(f)
		q.grantLocked(f)
		q.mu.Unlock()
		return nil
	}
	w := &wfqWaiter{ch: make(chan struct{})}
	if len(f.waiters) == 0 {
		q.enterLocked(f)
		q.active = append(q.active, f)
	}
	f.waiters = append(f.waiters, w)
	f.g.m.overloadQueue.SetInt(int64(len(f.waiters)))
	q.mu.Unlock()

	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: the token is ours, so put
			// it back properly (someone else may be waiting on it).
			q.releaseLocked()
			q.mu.Unlock()
			return ctx.Err()
		}
		for i, pw := range f.waiters {
			if pw == w {
				f.waiters = append(f.waiters[:i], f.waiters[i+1:]...)
				break
			}
		}
		if len(f.waiters) == 0 {
			q.deactivateLocked(f)
		}
		f.g.m.overloadQueue.SetInt(int64(len(f.waiters)))
		q.mu.Unlock()
		return ctx.Err()
	}
}

// ctxDone is the slice of context.Context acquire needs; the indirection
// keeps the scheduler testable with hand-rolled cancellation.
type ctxDone interface {
	Done() <-chan struct{}
	Err() error
}

// release returns one execution token and dispatches as many parked
// waiters as the current limit allows (the limit may have moved while
// the token was held — in either direction).
func (q *wfq) release() {
	q.mu.Lock()
	q.releaseLocked()
	q.mu.Unlock()
}

func (q *wfq) releaseLocked() {
	q.inflight--
	q.dispatchLocked()
}

// dispatchLocked grants tokens to the lowest-virtual-time backlogged
// flows while there is headroom. Tenant counts are small (a handful of
// flows), so the min scan is cheaper than a heap would be.
func (q *wfq) dispatchLocked() {
	for q.inflight < q.limiter.limitNow() && len(q.active) > 0 {
		min := 0
		for i := 1; i < len(q.active); i++ {
			if q.active[i].vt < q.active[min].vt {
				min = i
			}
		}
		f := q.active[min]
		w := f.waiters[0]
		f.waiters = f.waiters[1:]
		if len(f.waiters) == 0 {
			q.deactivateLocked(f)
		}
		f.g.m.overloadQueue.SetInt(int64(len(f.waiters)))
		q.grantLocked(f)
		w.granted = true
		close(w.ch)
	}
}

func (q *wfq) deactivateLocked(f *wfqFlow) {
	for i, af := range q.active {
		if af == f {
			q.active = append(q.active[:i], q.active[i+1:]...)
			return
		}
	}
}

// costOf is the machine cost heuristic the weights and brownout ranks
// rest on: the admission-proven stack bound (a provisioned stand-in
// for built-ins) times the lowered table footprint in KB (occupancy
// when the machine runs the simulator). It is a relative expense
// proxy, not a cycle count — Glück's linear-time result makes actual
// per-request cost ≈ machine cost × input bytes, and the ns/byte EWMA
// measures the proportionality constant live.
func costOf(g *grammarEntry) int64 {
	sb := g.lang.StackBound
	if sb <= 0 {
		sb = defaultStackBound
	}
	tableKB := g.cap.OccupancyKB
	if g.prog != nil {
		tableKB = g.prog.TableBytes() >> 10
	}
	if tableKB < 1 {
		tableKB = 1
	}
	c := int64(sb) * int64(tableKB)
	if c < 1 {
		c = 1
	}
	return c
}

// applyOverloadPlan recomputes the derived overload state after a
// snapshot (re)build: the AIMD ceiling (total worker width across
// tenants) and the brownout shed ranks. Rank 0 sheds first: lowest
// effective weight (weight/cost), ties broken toward the more
// expensive machine, then by name for determinism. The highest rank —
// the most protected tenant — is never shed (the ladder is clamped
// below it).
func (s *Server) applyOverloadPlan(ts *tenantSet) {
	ceiling := 0
	for _, n := range ts.names {
		ceiling += ts.byName[n].workers
	}
	s.limiter.setCeiling(ceiling)
	s.m.limitCurrent.Set(s.limiter.current())

	ranked := make([]*grammarEntry, 0, len(ts.names))
	for _, n := range ts.names {
		ranked = append(ranked, ts.byName[n])
	}
	sort.Slice(ranked, func(i, j int) bool {
		gi, gj := ranked[i], ranked[j]
		ei := float64(gi.weight.Load()) / float64(gi.cost)
		ej := float64(gj.weight.Load()) / float64(gj.cost)
		if ei != ej {
			return ei < ej
		}
		if gi.cost != gj.cost {
			return gi.cost > gj.cost
		}
		return gi.name < gj.name
	})
	for i, g := range ranked {
		g.shedRank.Store(int32(i))
	}
	// An existing ladder level deeper than the new tenant count would
	// shed everyone; clamp it.
	if max := int32(len(ts.names) - 1); s.brownoutLevel.Load() > max {
		s.brownoutLevel.Store(max)
	}
}

// overloadCheck is the pre-queue shedding decision: brownout first
// (cheapest — two atomic loads), then the deadline test. It returns
// the shed reason, or "" to proceed. contentLength < 0 means the
// transport did not declare a length; such requests are never
// deadline-shed (no prediction basis).
func (s *Server) overloadCheck(g *grammarEntry, contentLength int64, remaining time.Duration) string {
	if s.opts.Brownout {
		if lvl := s.brownoutLevel.Load(); lvl > 0 && g.shedRank.Load() < lvl {
			return shedBrownout
		}
	}
	if contentLength > 0 && g.nsPerByte.Samples() >= deadlineMinSamples {
		if predicted := g.nsPerByte.Value() * float64(contentLength); predicted > float64(remaining.Nanoseconds()) {
			return shedDeadline
		}
	}
	return ""
}

// shed reasons (shed_total{reason=} label values and trace fields).
const (
	shedQueue    = "queue"    // bounded waiting room full (the PR-2 429)
	shedDeadline = "deadline" // predicted cost exceeds remaining deadline
	shedBrownout = "brownout" // brownout ladder shed the tenant
)

// shedReasons pre-registers the label vocabulary.
var shedReasons = []string{shedQueue, shedDeadline, shedBrownout}

// observeParse feeds one completed whole-document parse back into the
// control loops: the AIMD limiter (and through it the brownout
// ladder), and the tenant's ns/byte predictor. Durable-session chunks
// are deliberately excluded — their latency measures checkpoint
// persistence, not parse throughput.
func (s *Server) observeParse(g *grammarEntry, parseNS int64, bytes int) {
	switch s.limiter.observe(parseNS) {
	case aimdCollapse:
		if s.opts.Brownout {
			ts := s.tenants.Load()
			if lvl := s.brownoutLevel.Load(); lvl < int32(len(ts.names)-1) {
				s.brownoutLevel.Store(lvl + 1)
			}
		}
	case aimdIncrease:
		if lvl := s.brownoutLevel.Load(); lvl > 0 {
			s.brownoutLevel.Store(lvl - 1)
		}
	}
	s.m.limitCurrent.Set(s.limiter.current())
	if bytes > 0 {
		g.nsPerByte.Observe(float64(parseNS) / float64(bytes))
	}
}

// ErrWeightRange rejects a weight override below 1.
var ErrWeightRange = errors.New("serve: weight must be a positive integer")

// SetWeight overrides a loaded grammar's fair-share weight at runtime
// (journaled, so the override survives restarts). It takes effect on
// the next grant — flows read the weight atomically per charge.
func (s *Server) SetWeight(name string, weight int) error {
	if weight < 1 {
		return ErrWeightRange
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	if s.draining.Load() {
		return ErrDraining
	}
	ts := s.tenants.Load()
	g, ok := ts.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrGrammarUnknown, name)
	}
	if err := s.journalAppend(store.Record{Op: store.OpWeight, Name: name, Weight: weight}); err != nil {
		return err
	}
	s.weights[name] = weight
	g.weight.Store(int64(weight))
	s.applyOverloadPlan(ts)
	return nil
}

// BrownoutLevel reports the current brownout ladder level (0 = no
// tenant shed). Exposed for tests and the smoke scripts.
func (s *Server) BrownoutLevel() int { return int(s.brownoutLevel.Load()) }

// BenchAdmitCycle drives one complete admission decision — snapshot
// lookup, waiting-room ticket, shed checks, and the weighted-fair
// fast-path token — and immediately undoes it. It exists so
// internal/bench can pin the decision overhead (ns and allocs per
// request) without standing up HTTP.
func (s *Server) BenchAdmitCycle(name string, contentLength int64) error {
	g, _, denial := s.admitRequest(name)
	if g == nil {
		return errors.New("serve: bench admission denied: " + denial.msg)
	}
	if reason := s.overloadCheck(g, contentLength, s.opts.RequestTimeout); reason != "" {
		s.finishBench(g)
		return errors.New("serve: bench admission shed: " + reason)
	}
	if !s.sched.tryAcquire(g.flow) {
		s.finishBench(g)
		return errors.New("serve: bench admission found the scheduler saturated")
	}
	s.sched.release()
	s.finishBench(g)
	return nil
}

func (s *Server) finishBench(g *grammarEntry) {
	g.release()
	s.inflight.Done()
	g.inflight.Done()
}
