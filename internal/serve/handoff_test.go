package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"aspen/internal/lang"
	"aspen/internal/store"
)

// newHandoffServer boots a durable single- or multi-grammar server for
// the handoff-endpoint tests.
func newHandoffServer(t *testing.T, langs ...*lang.Language) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return newTestServer(t, Options{Languages: langs, Store: st})
}

func putImage(t *testing.T, ts *httptest.Server, grammar, id string, img []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut,
		ts.URL+"/v1/sessions/"+grammar+"/"+id+"/checkpoint", bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestSessionHandoffRoundTrip pins the file-transfer contract: a
// checkpoint GET from one node, PUT to another, and the session
// concludes on the receiver byte-identically to a whole-document parse.
func TestSessionHandoffRoundTrip(t *testing.T) {
	doc := []byte(lang.JSONSample)
	half := len(doc) / 2

	_, tsA := newHandoffServer(t, lang.JSON())
	_, tsB := newHandoffServer(t, lang.JSON())

	// Reference: whole-document parse on the receiver.
	refResp, ref := postWhole(t, tsB, "JSON", doc)
	if refResp.StatusCode != http.StatusOK || !ref.Accepted {
		t.Fatalf("reference parse: status %d accepted %v", refResp.StatusCode, ref.Accepted)
	}

	// Feed half a session on node A, then ship its checkpoint to B.
	resp, err := http.Post(tsA.URL+"/v1/parse/JSON?session=ship", "application/octet-stream", bytes.NewReader(doc[:half]))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session chunk: status %d", resp.StatusCode)
	}

	getResp, err := http.Get(tsA.URL + "/v1/sessions/JSON/ship/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	img, _ := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint GET: status %d: %s", getResp.StatusCode, img)
	}
	if got := getResp.Header.Get("X-Aspen-Session-Bytes"); got == "" || got == "0" {
		t.Fatalf("checkpoint GET missing durable offset header, got %q", got)
	}

	put := putImage(t, tsB, "JSON", "ship", img)
	if put.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(put.Body)
		t.Fatalf("checkpoint PUT: status %d: %s", put.StatusCode, body)
	}
	var ack HandoffResponse
	if err := json.NewDecoder(put.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Bytes != half {
		t.Fatalf("PUT ack bytes = %d, want %d", ack.Bytes, half)
	}

	// Conclude on B; the stitched result must match the whole parse.
	resp, err = http.Post(tsB.URL+"/v1/parse/JSON?session=ship&final=1", "application/octet-stream", bytes.NewReader(doc[half:]))
	if err != nil {
		t.Fatal(err)
	}
	var final ParseResponse
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !final.Accepted {
		t.Fatalf("resumed conclusion: status %d accepted %v err %q", resp.StatusCode, final.Accepted, final.Error)
	}
	if final.Bytes != ref.Bytes || final.Tokens != ref.Tokens ||
		final.MaxStackDepth != ref.MaxStackDepth || final.Reports != ref.Reports {
		t.Fatalf("resumed conclusion differs from whole parse:\nresumed: %+v\n  whole: %+v", final, ref)
	}
}

// TestSessionHandoffTornUpload pins the torn-transfer contract: a
// truncated or bit-flipped image is refused 422 and nothing is stored.
func TestSessionHandoffTornUpload(t *testing.T) {
	doc := []byte(lang.JSONSample)
	_, tsA := newHandoffServer(t, lang.JSON())
	sB, tsB := newHandoffServer(t, lang.JSON())

	resp, err := http.Post(tsA.URL+"/v1/parse/JSON?session=torn", "application/octet-stream", bytes.NewReader(doc[:len(doc)/2]))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	getResp, err := http.Get(tsA.URL + "/v1/sessions/JSON/torn/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	img, _ := io.ReadAll(getResp.Body)
	getResp.Body.Close()

	for name, bad := range map[string][]byte{
		"truncated": img[:len(img)/2],
		"bitflip":   append(append([]byte{}, img[:len(img)-3]...), img[len(img)-3]^0x40, img[len(img)-2], img[len(img)-1]),
		"garbage":   []byte("not a checkpoint"),
	} {
		if got := putImage(t, tsB, "JSON", "torn", bad).StatusCode; got != http.StatusUnprocessableEntity {
			t.Errorf("%s upload: status %d, want 422", name, got)
		}
	}
	// Nothing was stored: the receiver has no image for the session.
	if keys, _ := sB.st.Checkpoints.Keys(); len(keys) != 0 {
		t.Fatalf("torn uploads left stored checkpoints: %v", keys)
	}
	// And the intact image still lands fine afterwards.
	if got := putImage(t, tsB, "JSON", "torn", img).StatusCode; got != http.StatusOK {
		t.Fatalf("intact upload after torn attempts: status %d, want 200", got)
	}
}

// TestSessionHandoffWrongMachine pins restore-on-wrong-node: an image
// taken on one grammar's machine is refused 410 by a node serving a
// different build — at upload time, before any resume could go wrong.
func TestSessionHandoffWrongMachine(t *testing.T) {
	doc := []byte(lang.JSONSample)
	_, tsA := newHandoffServer(t, lang.JSON())
	// The receiver serves XML under the name... no — it serves both, and
	// the image is PUT under the XML grammar, whose machine fingerprint
	// cannot match a JSON-taken checkpoint.
	_, tsB := newHandoffServer(t, lang.JSON(), lang.XML())

	resp, err := http.Post(tsA.URL+"/v1/parse/JSON?session=wrong", "application/octet-stream", bytes.NewReader(doc[:len(doc)/2]))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	getResp, err := http.Get(tsA.URL + "/v1/sessions/JSON/wrong/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	img, _ := io.ReadAll(getResp.Body)
	getResp.Body.Close()

	put := putImage(t, tsB, "XML", "wrong", img)
	body, _ := io.ReadAll(put.Body)
	if put.StatusCode != http.StatusGone {
		t.Fatalf("wrong-machine upload: status %d (%s), want 410", put.StatusCode, body)
	}
}

// TestReadyzLifecycle pins the readiness state machine: ready while
// serving, unready (503 + Retry-After) after SetReady(false) while
// /healthz stays 200, and unready for good once draining.
func TestReadyzLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Options{Languages: []*lang.Language{lang.JSON()}})

	check := func(wantStatus int, wantReason string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("/readyz status = %d, want %d", resp.StatusCode, wantStatus)
		}
		var rr ReadyResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		if rr.Reason != wantReason {
			t.Fatalf("/readyz reason = %q, want %q", rr.Reason, wantReason)
		}
		if wantStatus != http.StatusOK && resp.Header.Get("Retry-After") == "" {
			t.Fatal("unready /readyz missing Retry-After")
		}
	}

	check(http.StatusOK, "")
	s.SetReady(false)
	check(http.StatusServiceUnavailable, "unready")
	// Liveness is unaffected: the node still parses and reports healthy.
	if resp, pr := postWhole(t, ts, "JSON", []byte(lang.JSONSample)); resp.StatusCode != http.StatusOK || !pr.Accepted {
		t.Fatalf("unready node refused a parse: status %d", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d while merely unready, want 200", hresp.StatusCode)
	}
	s.SetReady(true)
	check(http.StatusOK, "")

	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(t.Context()) }()
	<-drainDone
	check(http.StatusServiceUnavailable, "draining")
	// Drain denials carry Retry-After now.
	resp, err := http.Post(ts.URL+"/v1/parse/JSON", "application/octet-stream", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("drain denial: status %d Retry-After %q, want 503 with Retry-After", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// TestTraceIDReusedAcrossHop pins the router-hop correlation contract:
// a request arriving with X-Aspen-Trace keeps that ID in its response
// and flight-recorder entry instead of being re-stamped.
func TestTraceIDReusedAcrossHop(t *testing.T) {
	_, ts := newTestServer(t, Options{Languages: []*lang.Language{lang.JSON()}})
	const inbound = "00000000deadbeef"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/parse/JSON", bytes.NewReader([]byte(lang.JSONSample)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TraceHeader, inbound)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != inbound {
		t.Fatalf("response trace ID = %q, want the forwarded %q", got, inbound)
	}
	// A garbage inbound header falls back to a fresh ID, never empty.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/parse/JSON", bytes.NewReader([]byte(lang.JSONSample)))
	req.Header.Set(TraceHeader, "not-hex!")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got == "" || got == "not-hex!" {
		t.Fatalf("garbage inbound trace produced %q, want a fresh valid ID", got)
	}
}

// TestSessionCheckpointDelete pins the router's reset verb: DELETE
// discards the durable state (the next chunk starts the session over),
// and deleting an absent checkpoint is an idempotent 200.
func TestSessionCheckpointDelete(t *testing.T) {
	doc := []byte(lang.JSONSample)
	_, ts := newHandoffServer(t, lang.JSON())

	resp, err := http.Post(ts.URL+"/v1/parse/JSON?session=rst", "application/octet-stream", bytes.NewReader(doc[:len(doc)/2]))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session chunk: status %d", resp.StatusCode)
	}

	del := func() int {
		req, derr := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/JSON/rst/checkpoint", nil)
		if derr != nil {
			t.Fatal(derr)
		}
		dresp, derr := http.DefaultClient.Do(req)
		if derr != nil {
			t.Fatal(derr)
		}
		io.Copy(io.Discard, dresp.Body)
		dresp.Body.Close()
		return dresp.StatusCode
	}
	if got := del(); got != http.StatusOK {
		t.Fatalf("DELETE with stored checkpoint: status %d, want 200", got)
	}
	if got := del(); got != http.StatusOK {
		t.Fatalf("repeated DELETE: status %d, want idempotent 200", got)
	}
	getResp, err := http.Get(ts.URL + "/v1/sessions/JSON/rst/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, getResp.Body)
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusNotFound {
		t.Fatalf("checkpoint GET after delete: status %d, want 404", getResp.StatusCode)
	}

	// The session restarts cleanly: a whole-document feed under the same
	// ID concludes like a fresh parse (no stale half-fed state).
	resp, err = http.Post(ts.URL+"/v1/parse/JSON?session=rst&final=1", "application/octet-stream", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var pr ParseResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !pr.Accepted || pr.Bytes != len(doc) {
		t.Fatalf("post-delete restart: status %d accepted %v bytes %d want %d", resp.StatusCode, pr.Accepted, pr.Bytes, len(doc))
	}
}
