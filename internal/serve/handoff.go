package serve

import (
	"errors"
	"io"
	"net/http"
	"os"
	"strconv"

	"aspen/internal/store"
	"aspen/internal/stream"
	"aspen/internal/telemetry"
)

// Session checkpoint handoff: the node-side half of cross-node
// failover. A fleet router replicates each durable session's latest
// sealed checkpoint by GETting it from the owning node after every
// acknowledged chunk; when that node dies, the router PUTs the image to
// a replacement node and resumes the stream there. Both directions move
// the exact bytes the checkpoint store holds — the seals travel with
// the image, so a copy torn in transit is refused (422), and an image
// taken on a different machine build is refused (410) before it can
// resume into silently wrong behavior. PR 5's Restore-refuses-mismatch
// contract is what makes this a file transfer instead of new theory.

// HandoffResponse is the PUT acknowledgment: the durable offsets of the
// accepted image, so the router can sanity-check the resume point.
type HandoffResponse struct {
	Grammar string `json:"grammar"`
	Session string `json:"session"`
	Bytes   int    `json:"bytes"`
	Tokens  int    `json:"tokens"`
}

// maxHandoffBytes caps one shipped checkpoint image. Images embed the
// machine snapshot plus the untokenized tail; far below this in
// practice.
const maxHandoffBytes = 64 << 20

// handoffSession resolves the common preconditions of both handoff
// verbs: a durable store, a loaded grammar, a valid session key, and
// exclusive access to the session. Returns ok=false with the response
// already written.
func (s *Server) handoffSession(w http.ResponseWriter, r *http.Request) (g *grammarEntry, key string, ok bool) {
	if s.st == nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: "session handoff requires a state directory (start aspend with -state-dir)"})
		return nil, "", false
	}
	name, id := r.PathValue("grammar"), r.PathValue("id")
	g = s.grammar(name)
	if g == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown grammar " + name})
		return nil, "", false
	}
	key = sessionKey(name, id)
	if !store.ValidKey(key) {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "invalid session id " + id})
		return nil, "", false
	}
	if !s.sessions.acquire(key) {
		writeJSON(w, http.StatusConflict, ErrorResponse{Error: "session " + id + " has a request in flight"})
		return nil, "", false
	}
	return g, key, true
}

// handleSessionGet ships the session's latest sealed checkpoint image,
// exactly as stored. 404 when the session has no durable state (fresh,
// or already concluded); 410 when the stored image fails its seals.
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	g, key, ok := s.handoffSession(w, r)
	if !ok {
		return
	}
	defer s.sessions.release(key)
	data, cp, err := s.st.Checkpoints.LoadBytes(key)
	switch {
	case err == nil:
	case errors.Is(err, os.ErrNotExist):
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "no stored checkpoint for session " + r.PathValue("id")})
		return
	case errors.Is(err, store.ErrCheckpointCorrupt):
		s.m.ckptCorrupt.Inc()
		_ = s.st.Checkpoints.Delete(key)
		writeJSON(w, http.StatusGone, ErrorResponse{Error: "stored checkpoint for session " + r.PathValue("id") + " failed its integrity seals"})
		return
	default:
		g.m.errors.Inc()
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Aspen-Session-Bytes", strconv.Itoa(cp.Offset+len(cp.Tail)))
	w.Header().Set("X-Aspen-Machine", telemetry.TraceIDString(cp.Machine))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleSessionDelete discards a session's durable state without
// concluding it — the router's reset verb. Before re-sending a chunk
// whose first delivery ended in uncertainty (the node may have
// persisted it without the ack reaching anyone), the router restores
// the node to the acknowledged prefix: PUT of its cached image, or
// this DELETE when no bytes were ever acknowledged. Idempotent —
// deleting an absent checkpoint answers 200.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	g, key, ok := s.handoffSession(w, r)
	if !ok {
		return
	}
	defer s.sessions.release(key)
	if err := s.st.Checkpoints.Delete(key); err != nil {
		g.m.errors.Inc()
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, HandoffResponse{Grammar: g.name, Session: r.PathValue("id")})
}

// handleSessionPut accepts a shipped checkpoint image for this node to
// resume from. The image must pass both integrity seals (422 — a torn
// upload must never be trusted) and must have been taken on the exact
// machine build this node serves the grammar with (410, the same
// non-retryable verdict Restore's ErrMachineMismatch gets — shipping it
// anywhere else cannot succeed either, so the router must not retry).
func (s *Server) handleSessionPut(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "server is draining"})
		return
	}
	g, key, ok := s.handoffSession(w, r)
	if !ok {
		return
	}
	defer s.sessions.release(key)
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxHandoffBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "reading checkpoint image: " + err.Error()})
		return
	}
	var cp stream.Checkpoint
	if uerr := cp.UnmarshalBinary(data); uerr != nil || !cp.Verify() || !cp.Exec.Verify() {
		s.m.ckptCorrupt.Inc()
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{
			Error: "uploaded checkpoint image failed its integrity seals (torn or corrupt; not stored)"})
		return
	}
	if mfp := g.cm.Machine.Fingerprint(); cp.Machine != mfp {
		writeJSON(w, http.StatusGone, ErrorResponse{
			Error: "session " + r.PathValue("id") + " cannot resume on this node's " + g.name +
				" build: " + stream.ErrMachineMismatch.Error()})
		return
	}
	if serr := s.st.Checkpoints.SaveBytes(key, data); serr != nil {
		g.m.errors.Inc()
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: serr.Error()})
		return
	}
	writeJSON(w, http.StatusOK, HandoffResponse{
		Grammar: g.name,
		Session: r.PathValue("id"),
		Bytes:   cp.Offset + len(cp.Tail),
		Tokens:  cp.Tokens,
	})
}
