//go:build !race

package serve

// raceEnabled reports whether the race detector instruments this build.
// Alloc-exactness assertions are relaxed under it: the race runtime
// allocates shadow state lazily, which perturbs testing.AllocsPerRun.
const raceEnabled = false
