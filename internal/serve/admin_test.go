package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"aspen/internal/lang"
	"aspen/internal/store"
	"aspen/internal/verify"
)

func postAdmin(t *testing.T, ts *httptest.Server, body string) (int, AdminResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/admin/grammars", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ar AdminResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, ar
}

func grammarNames(infos []GrammarInfo) []string {
	names := make([]string, len(infos))
	for i, gi := range infos {
		names[i] = gi.Name
	}
	return names
}

// TestAdminGrammarAPI walks the mutation surface end to end: add a new
// tenant (repartitioning the fabric), reject duplicates/unknowns with
// the right statuses, swap and reload hitlessly, remove, and refuse to
// remove the last grammar.
func TestAdminGrammarAPI(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Languages: []*lang.Language{lang.JSON(), lang.XML()},
	})

	// Add MiniC (resolved via the built-in resolver).
	status, ar := postAdmin(t, ts, `{"op":"add","grammar":"MiniC"}`)
	if status != http.StatusOK {
		t.Fatalf("add MiniC: status %d", status)
	}
	if got := grammarNames(ar.Grammars); len(got) != 3 || got[2] != "MiniC" {
		t.Fatalf("after add: grammars %v", got)
	}
	// Membership changes repartition: every bank must have an owner and
	// shares must be contiguous and disjoint.
	lo := 0
	for _, gi := range s.Grammars() {
		g := s.grammar(gi.Name)
		if g.bankLo != lo {
			t.Fatalf("tenant %s starts at bank %d, want %d", gi.Name, g.bankLo, lo)
		}
		lo = g.bankHi
	}
	if lo != s.Fabric().Total() {
		t.Fatalf("partition covers %d of %d banks", lo, s.Fabric().Total())
	}

	// The new tenant serves.
	resp, pr := postWhole(t, ts, "MiniC", []byte("int main() { return 0; }"))
	if resp.StatusCode != http.StatusOK || !pr.Accepted {
		t.Fatalf("MiniC parse after add: status %d accepted %v", resp.StatusCode, pr.Accepted)
	}

	// Failure statuses.
	if status, _ := postAdmin(t, ts, `{"op":"add","grammar":"MiniC"}`); status != http.StatusConflict {
		t.Fatalf("duplicate add: status %d, want 409", status)
	}
	if status, _ := postAdmin(t, ts, `{"op":"add","grammar":"Klingon"}`); status != http.StatusNotFound {
		t.Fatalf("unknown add: status %d, want 404", status)
	}
	if status, _ := postAdmin(t, ts, `{"op":"swap","grammar":"Klingon"}`); status != http.StatusNotFound {
		t.Fatalf("unknown swap: status %d, want 404", status)
	}
	if status, _ := postAdmin(t, ts, `{"op":"conjure","grammar":"JSON"}`); status != http.StatusBadRequest {
		t.Fatalf("unknown op: status %d, want 400", status)
	}
	if status, _ := postAdmin(t, ts, `{"op":`); status != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", status)
	}

	// Swap rebuilds the entry (new pointer, same bank range).
	before := s.grammar("JSON")
	if status, _ := postAdmin(t, ts, `{"op":"swap","grammar":"JSON"}`); status != http.StatusOK {
		t.Fatal("swap JSON failed")
	}
	after := s.grammar("JSON")
	if after == before {
		t.Fatal("swap did not replace the entry")
	}
	if after.bankLo != before.bankLo || after.bankHi != before.bankHi {
		t.Fatalf("swap moved the bank range: [%d,%d) → [%d,%d)",
			before.bankLo, before.bankHi, after.bankLo, after.bankHi)
	}

	// Reload swaps every entry.
	status, ar = postAdmin(t, ts, `{"op":"reload"}`)
	if status != http.StatusOK || ar.Swapped != 3 {
		t.Fatalf("reload: status %d swapped %d, want 200/3", status, ar.Swapped)
	}
	if s.grammar("JSON") == after {
		t.Fatal("reload did not replace entries")
	}

	// Remove down to one, then refuse the last.
	if status, _ := postAdmin(t, ts, `{"op":"remove","grammar":"MiniC"}`); status != http.StatusOK {
		t.Fatal("remove MiniC failed")
	}
	if status, _ := postAdmin(t, ts, `{"op":"remove","grammar":"XML"}`); status != http.StatusOK {
		t.Fatal("remove XML failed")
	}
	if status, _ := postAdmin(t, ts, `{"op":"remove","grammar":"JSON"}`); status != http.StatusConflict {
		t.Fatalf("remove last grammar: status %d, want 409", status)
	}
	if resp, _ := postWhole(t, ts, "XML", []byte("<a/>")); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("removed grammar answered %d, want 404", resp.StatusCode)
	}
}

// TestHitlessSwapZeroDrop is the hitless-reload acceptance test: under
// continuous concurrent load, repeated entry swaps (the SIGHUP path)
// drop and mis-route nothing — every single request answers 200 with
// the right grammar's verdict, while the serving entry is replaced
// under it dozens of times.
func TestHitlessSwapZeroDrop(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Languages: []*lang.Language{lang.JSON(), lang.XML()},
	})
	doc := []byte(`{"k": [1, 2, {"ok": true}]}`)

	const clients = 8
	stopLoad := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan string, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/parse/JSON", "application/octet-stream", bytes.NewReader(doc))
				if err != nil {
					errs <- err.Error()
					return
				}
				var pr ParseResponse
				derr := json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || derr != nil || !pr.Accepted || pr.Grammar != "JSON" {
					errs <- resp.Status + " grammar=" + pr.Grammar
					return
				}
			}
		}()
	}

	const swaps = 40
	for i := 0; i < swaps; i++ {
		var err error
		if i%4 == 3 {
			_, err = s.Reload()
		} else {
			err = s.SwapGrammar("JSON")
		}
		if err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stopLoad)
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatalf("request dropped or mis-routed during swaps: %s", e)
	default:
	}
	snap := s.Registry().Snapshot()
	if got := snap.Counters["reload_swaps_total"]; got != swaps {
		t.Errorf("reload_swaps_total = %d, want %d", got, swaps)
	}
	if snap.Counters["serve_JSON_requests_total"] < 10 {
		t.Fatalf("load generator barely ran: %d requests", snap.Counters["serve_JSON_requests_total"])
	}
	// Retired entries must drain: after the load stops, every old
	// entry's inflight hits zero and its parked-slot goroutines exit.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestRegistryDurableRestart: mutations journaled by one server are the
// boot state of the next — the journal, not the flags, decides
// membership and verify mode after the first boot.
func TestRegistryDurableRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(Options{
		Languages: []*lang.Language{lang.JSON(), lang.XML()},
		Store:     st,
		Chaos:     &ChaosOptions{Verify: verify.ModeDMR},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.AddGrammar("MiniC"); err != nil {
		t.Fatal(err)
	}
	if err := s1.RemoveGrammar("XML"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with *different* flags: the journal must win.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2, err := New(Options{
		Languages: []*lang.Language{lang.JSON(), lang.XML(), lang.DOT()},
		Store:     st2,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := grammarNames(s2.Grammars())
	want := []string{"JSON", "MiniC"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("restarted membership %v, want %v", got, want)
	}
	if mode := verifyModeOf(s2.opts.Chaos); mode != verify.ModeDMR {
		t.Fatalf("restarted verify mode %v, want dmr", mode)
	}
	if n := s2.Registry().Snapshot().Gauges["journal_replay_records"]; n == 0 {
		t.Fatal("journal_replay_records gauge not set on replayed boot")
	}
	// And the restarted server serves its journaled registry.
	ts := httptest.NewServer(s2.Handler())
	defer ts.Close()
	if resp, pr := postWhole(t, ts, "MiniC", []byte("int x() { return 1; }")); resp.StatusCode != 200 || !pr.Accepted {
		t.Fatalf("MiniC after restart: %d accepted=%v", resp.StatusCode, pr.Accepted)
	}
	if resp, _ := postWhole(t, ts, "XML", []byte("<a/>")); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("removed XML resurrected after restart: %d", resp.StatusCode)
	}
}

// TestDrainStopsControlPlane is the post-drain regression: a Drain that
// lands during an active breaker half-open probe terminates cleanly —
// no goroutine left waiting — and mutations after Drain are rejected
// before any journal write (the journal byte size must not move).
func TestDrainStopsControlPlane(t *testing.T) {
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s, ts := newTestServer(t, Options{
		Languages: []*lang.Language{lang.JSON()},
		Store:     st,
		Chaos: &ChaosOptions{
			FaultRate:        1, // unrecoverable: every request exhausts replay
			FaultSeed:        7,
			MaxAttempts:      2,
			BackoffBase:      50 * time.Microsecond,
			BackoffCap:       time.Millisecond,
			BreakerThreshold: 1,
			BreakerCooldown:  50 * time.Millisecond,
			Verify:           verify.ModeTMR,
		},
	})
	doc := []byte(`[1, 2, 3]`)
	// Open the breaker, wait out the cooldown, then launch the half-open
	// probe with a body that stalls until after Drain is underway.
	if resp, _ := postWhole(t, ts, "JSON", doc); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("exhaustion status %d, want 503", resp.StatusCode)
	}
	time.Sleep(80 * time.Millisecond)

	pr, pw := io.Pipe()
	probeDone := make(chan struct{})
	go func() {
		defer close(probeDone)
		resp, err := http.Post(ts.URL+"/v1/parse/JSON", "application/octet-stream", pr)
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(30 * time.Millisecond) // probe is mid-body, holding the claim

	sizeBefore, err := st.Journal.Size()
	if err != nil {
		t.Fatal(err)
	}
	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainDone <- s.Drain(ctx)
	}()
	time.Sleep(20 * time.Millisecond) // drain is now waiting on the probe
	pw.Write(doc)
	pw.Close()
	<-probeDone
	if err := <-drainDone; err != nil {
		t.Fatalf("drain during half-open probe: %v", err)
	}

	// Post-drain mutations are rejected before touching the journal.
	if err := s.AddGrammar("MiniC"); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain add = %v, want ErrDraining", err)
	}
	if _, err := s.Reload(); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain reload = %v, want ErrDraining", err)
	}
	if got, err := st.Journal.Size(); err != nil || got != sizeBefore {
		t.Fatalf("journal grew after drain: %d → %d bytes", sizeBefore, got)
	}

	// No goroutine left waiting: the probe's unit, the breaker claim,
	// and all parked-slot goroutines are released. Allow the runtime a
	// moment to reap.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+8 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+8 {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked after drain: %d > baseline %d\n%s",
			n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestSessionResumeAcrossServers: a durable session started on one
// server concludes on a second one sharing the state directory, with
// the same verdict and totals as an uninterrupted parse — the
// API-level half of kill -9 recovery.
func TestSessionResumeAcrossServers(t *testing.T) {
	doc := []byte(`{"a": [1, 2, 3], "b": {"c": "deep", "d": [true, false, null]}}`)
	half := len(doc) / 2

	// Ground truth: the whole document in one request, no store.
	_, plain := newTestServer(t, Options{Languages: []*lang.Language{lang.JSON()}})
	_, want := postWhole(t, plain, "JSON", doc)

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newTestServer(t, Options{Languages: []*lang.Language{lang.JSON()}, Store: st})
	resp, err := http.Post(ts1.URL+"/v1/parse/JSON?session=job1", "application/octet-stream", bytes.NewReader(doc[:half]))
	if err != nil {
		t.Fatal(err)
	}
	var part ParseResponse
	if err := json.NewDecoder(resp.Body).Decode(&part); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !part.Partial || part.Bytes != half {
		t.Fatalf("partial chunk: status %d partial %v bytes %d (want %d)",
			resp.StatusCode, part.Partial, part.Bytes, half)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server over the same state directory.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	_, ts2 := newTestServer(t, Options{Languages: []*lang.Language{lang.JSON()}, Store: st2})
	resp, err = http.Post(ts2.URL+"/v1/parse/JSON?session=job1&final=1", "application/octet-stream", bytes.NewReader(doc[half:]))
	if err != nil {
		t.Fatal(err)
	}
	var got ParseResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final chunk: status %d", resp.StatusCode)
	}
	if !got.Accepted || got.Bytes != want.Bytes || got.Tokens != want.Tokens ||
		got.Cycles != want.Cycles || got.MaxStackDepth != want.MaxStackDepth {
		t.Fatalf("resumed session diverged from uninterrupted parse:\n got %+v\nwant %+v", got, want)
	}
	// The concluded session's image is spent.
	keys, err := st2.Checkpoints.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("concluded session left images behind: %v", keys)
	}
}

// TestSessionRefusesCorruptImage: a bit-flipped stored checkpoint is
// answered 410 + checkpoint_store_corrupt_total, never resumed.
func TestSessionRefusesCorruptImage(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s, ts := newTestServer(t, Options{Languages: []*lang.Language{lang.JSON()}, Store: st})
	doc := []byte(`{"k": [1, 2, 3]}`)
	resp, err := http.Post(ts.URL+"/v1/parse/JSON?session=frag", "application/octet-stream", bytes.NewReader(doc[:7]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Flip one byte of the stored image.
	path := filepath.Join(dir, "checkpoints", "sess-JSON-frag.ckpt")
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)/2] ^= 0x20
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Post(ts.URL+"/v1/parse/JSON?session=frag&final=1", "application/octet-stream", bytes.NewReader(doc[7:]))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("corrupt session image: status %d, want 410", resp.StatusCode)
	}
	if got := s.Registry().Snapshot().Counters["checkpoint_store_corrupt_total"]; got != 1 {
		t.Fatalf("checkpoint_store_corrupt_total = %d, want 1", got)
	}

	// Concurrent chunks for one session conflict.
	if status := func() int {
		r1, w1 := io.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			resp, err := http.Post(ts.URL+"/v1/parse/JSON?session=dup", "application/octet-stream", r1)
			if err == nil {
				resp.Body.Close()
			}
		}()
		w1.Write([]byte("{"))
		time.Sleep(30 * time.Millisecond)
		resp, err := http.Post(ts.URL+"/v1/parse/JSON?session=dup", "application/octet-stream", bytes.NewReader([]byte("}")))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		w1.Close()
		<-done
		return resp.StatusCode
	}(); status != http.StatusConflict {
		t.Fatalf("concurrent session chunk: status %d, want 409", status)
	}
}
