package serve

import (
	"bytes"
	"context"
	"testing"
	"time"

	"aspen/internal/lang"
)

// Steady-state budget for one g.parse call. The residual allocations
// are the two deferred runner-return closures inside the lexer scan
// (one per Write/Close call with input) plus small interface boxing;
// everything proportional to the input — tokens, stack, runner state,
// copy buffer, the parser itself — is pooled or reused. If this number
// creeps up, something started allocating per request.
const steadyStateAllocBudget = 8

// TestParseSteadyStateAllocs pins the acceptance criterion: after
// warmup, a parse performs zero grammar compiles and at most a fixed
// small number of allocations, independent of how many requests ran.
// Both execution backends are held to the same ceiling — the fast-path
// engine (pooled Execs, standing batch tickets) must not buy its speed
// with per-request garbage.
func TestParseSteadyStateAllocs(t *testing.T) {
	for _, eng := range []string{EngineFast, EngineSim} {
		t.Run(eng, func(t *testing.T) { testParseSteadyStateAllocs(t, eng) })
	}
}

func testParseSteadyStateAllocs(t *testing.T, eng string) {
	s, err := New(Options{Languages: []*lang.Language{lang.JSON()}, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	g := s.grammar("JSON")
	doc := []byte(`{"k": [1, 2, {"n": [3, 4]}], "s": "str", "b": true}`)
	ctx := context.Background()

	run := func() {
		out, retries, inputErr, sysErr := g.parseGuarded(ctx, bytes.NewReader(doc), nil)
		if sysErr != nil || inputErr != nil || !out.Accepted || retries != 0 {
			t.Fatalf("parse: out=%+v retries=%d inputErr=%v sysErr=%v", out, retries, inputErr, sysErr)
		}
	}
	// Warm the pools (parser, lexer runners, copy buffer) and let the
	// reader settle.
	for i := 0; i < 4; i++ {
		run()
	}
	compilesBefore := s.Registry().Snapshot().Counters["serve_compiles_total"]

	// bytes.Reader escapes to the io.Reader interface, so allocate it
	// outside the measured region and rewind inside.
	r := bytes.NewReader(doc)
	allocs := testing.AllocsPerRun(50, func() {
		r.Reset(doc)
		out, _, inputErr, sysErr := g.parseGuarded(ctx, r, nil)
		if sysErr != nil || inputErr != nil || !out.Accepted {
			t.Fatal("parse failed inside measured run")
		}
	})
	if allocs > steadyStateAllocBudget {
		t.Errorf("steady-state parse = %.1f allocs/run, budget %d", allocs, steadyStateAllocBudget)
	}
	t.Logf("steady-state parse: %.1f allocs/run", allocs)

	// Tracing must ride along for free: the same parse with a live span —
	// phase attribution, per-grammar phase histograms, and the flight-
	// recorder write — stays within the same budget (the span is stack
	// state, the record a fixed-size copy, the outcome a constant string).
	var sp span
	tracedAllocs := testing.AllocsPerRun(50, func() {
		r.Reset(doc)
		sp = span{id: 1, start: time.Now(), grammar: g.name, g: g,
			status: 200, outcome: outcomeAccepted}
		out, _, inputErr, sysErr := g.parseGuarded(ctx, r, &sp)
		if sysErr != nil || inputErr != nil || !out.Accepted {
			t.Fatal("traced parse failed inside measured run")
		}
		sp.bytes = int64(out.Bytes)
		s.recordSpan(&sp)
	})
	if tracedAllocs > steadyStateAllocBudget {
		t.Errorf("traced steady-state parse = %.1f allocs/run, budget %d (tracing must not allocate)",
			tracedAllocs, steadyStateAllocBudget)
	}
	// The race runtime allocates shadow state lazily, which makes the
	// traced-vs-untraced comparison noisy by ±1–2 allocs; the absolute
	// budget above still holds there.
	if !raceEnabled && tracedAllocs > allocs {
		t.Errorf("tracing added heap allocations: %.1f traced vs %.1f untraced", tracedAllocs, allocs)
	}
	t.Logf("traced steady-state parse: %.1f allocs/run", tracedAllocs)

	if after := s.Registry().Snapshot().Counters["serve_compiles_total"]; after != compilesBefore {
		t.Errorf("serve_compiles_total moved %d → %d during steady state", compilesBefore, after)
	}
	if compilesBefore != 1 {
		t.Errorf("serve_compiles_total = %d, want 1 (one grammar, compiled once at startup)", compilesBefore)
	}
}

// Capacity partitioning: every grammar gets a non-zero bank share and
// worker width, and the shares never exceed the fabric budget.
func TestFabricPartition(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, name := range s.tenantNames() {
		g := s.grammar(name)
		if g.cap.FabricBanks < 1 || g.cap.Contexts < 1 || g.workers < 1 {
			t.Errorf("%s: degenerate capacity %+v workers=%d", name, g.cap, g.workers)
		}
		if g.workers != g.cap.Contexts {
			t.Errorf("%s: workers=%d != contexts=%d (no override given)", name, g.workers, g.cap.Contexts)
		}
		total += g.cap.FabricBanks
	}
	if budget := s.cfg.FabricBanksOrDefault(); total > budget {
		t.Errorf("grammar shares sum to %d banks, fabric budget %d", total, budget)
	}
}
