package serve

import (
	"testing"

	"aspen/internal/arch"
	"aspen/internal/lang"
)

// TestBankPartitionCoversFabric pins the static partition invariant:
// tenant bank ranges are contiguous, non-overlapping, and together own
// every physical bank — the division remainder goes to the last tenant,
// so no bank's death is invisible to pool shrinking and injectors.
func TestBankPartitionCoversFabric(t *testing.T) {
	langs := append(lang.All(), lang.MiniC())
	s, err := New(Options{Languages: langs})
	if err != nil {
		t.Fatal(err)
	}
	total := s.fabric.Total()
	if total%len(langs) == 0 {
		t.Logf("fabric %d divides evenly across %d tenants; remainder path not exercised", total, len(langs))
	}
	prevHi := 0
	for _, name := range s.tenantNames() {
		g := s.grammar(name)
		if g.bankLo != prevHi {
			t.Errorf("%s: bankLo %d, want %d (gap or overlap)", name, g.bankLo, prevHi)
		}
		if g.bankHi < g.bankLo {
			t.Errorf("%s: inverted range [%d,%d)", name, g.bankLo, g.bankHi)
		}
		prevHi = g.bankHi
	}
	if prevHi != total {
		t.Errorf("remainder banks unowned: last bankHi %d, fabric total %d", prevHi, total)
	}
}

// TestBankPartitionMoreGrammarsThanBanks pins the documented degenerate
// case: with fewer banks than tenants, ranges stay well-formed (empty
// for tenants past the fabric end) and construction still succeeds with
// every pool floored at one worker slot.
func TestBankPartitionMoreGrammarsThanBanks(t *testing.T) {
	langs := append(lang.All(), lang.MiniC())
	cfg := arch.DefaultConfig()
	cfg.FabricBanks = 3
	s, err := New(Options{Languages: langs, Arch: cfg})
	if err != nil {
		t.Fatal(err)
	}
	total := s.fabric.Total()
	for _, name := range s.tenantNames() {
		g := s.grammar(name)
		if g.bankLo > g.bankHi || g.bankHi > total {
			t.Errorf("%s: malformed range [%d,%d) on a %d-bank fabric", name, g.bankLo, g.bankHi, total)
		}
		if g.workers < 1 {
			t.Errorf("%s: workers %d, want >= 1", name, g.workers)
		}
	}
	names := s.tenantNames()
	last := s.grammar(names[len(names)-1])
	if last.bankHi != total && last.bankHi != last.bankLo {
		t.Errorf("last tenant range [%d,%d) neither reaches total %d nor is empty", last.bankLo, last.bankHi, total)
	}
}
