// Package serve is the concurrent multi-tenant parsing service over the
// simulated bank fabric — the first consumer of the paper's headline
// claim that throughput comes from parallelism (§I, §IV-B: "hundreds of
// different DPDAs in parallel as any number of LLC SRAM arrays can be
// re-purposed"). A Server loads a set of named grammars, compiling each
// into an hDPDA and placing it onto banks, and then answers parse jobs
// over HTTP: POST /v1/parse/{grammar} streams the request body
// chunk-by-chunk straight into a stream.Parser, so an arbitrarily large
// document is parsed as it arrives, in the paper's MBs-to-GBs operating
// regime.
//
// Concurrency mirrors the architecture. The LLC contributes a fixed
// bank budget (arch.Config.FabricBanks); each grammar's machine
// occupies a measured number of banks per execution context; the fabric
// is partitioned across the loaded grammars and each grammar gets one
// worker slot per context its share sustains (arch.CapacityFor).
// Service concurrency is therefore bank-level parallelism, not an
// arbitrary GOMAXPROCS-shaped pool.
//
// The registry is dynamic. The loaded tenant set lives in an immutable
// snapshot behind an atomic pointer; admin mutations (add, remove,
// swap, reload — see admin.go) build replacement entries off to the
// side, journal the mutation to the durable store (when configured),
// and atomically publish the new snapshot. Requests in flight against a
// replaced entry finish on it; the old entry retires once they drain.
// With Options.Store set, every mutation is write-ahead journaled and a
// restarted server replays the journal to resume the same registry
// state — the crash-durability half of the control plane (see
// internal/store and DESIGN.md §9).
//
// Production machinery: a bounded per-grammar admission queue answers
// 429 + Retry-After instead of growing without bound; every request
// carries a context deadline and honors client cancellation; parser and
// copy-buffer state is pooled with sync.Pool so the steady-state request
// path performs zero compiles and O(1) allocations (pinned by
// alloc_test.go); Drain stops admission and waits for in-flight work
// (wired to SIGTERM in cmd/aspend); and per-grammar/per-outcome metrics
// plus sampled request traces flow through the internal/telemetry
// registry, served on the same mux as the debug endpoints.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"aspen/internal/admit"
	"aspen/internal/arch"
	"aspen/internal/lang"
	"aspen/internal/store"
	"aspen/internal/telemetry"
	"aspen/internal/verify"
)

// Defaults for the zero Options value.
const (
	DefaultQueueDepth     = 64
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxBodyBytes   = 64 << 20
	copyBufSize           = 32 << 10
)

// Options configures a Server. The zero value serves the five built-in
// languages on the paper's default fabric.
type Options struct {
	// Languages is the grammar set to load (nil = the four Table III
	// languages plus MiniC). Names are the URL path segment. With a
	// non-empty journal in Store, the journal's membership wins and
	// Languages only seeds the resolvable-name set.
	Languages []*lang.Language
	// Arch parameterizes the simulated fabric the worker-pool widths are
	// derived from (zero value = arch.DefaultConfig()).
	Arch arch.Config
	// QueueDepth bounds each grammar's admission queue — requests
	// waiting for a worker slot beyond the running set. A full queue
	// answers 429 with Retry-After (0 = DefaultQueueDepth, negative = 0:
	// no waiting room, admission requires a free slot).
	QueueDepth int
	// Workers overrides the per-grammar worker-slot count (0 = derived
	// from the grammar's fabric share; see Capacity accounting).
	Workers int
	// RequestTimeout bounds one request end-to-end, queue wait included
	// (0 = DefaultRequestTimeout).
	RequestTimeout time.Duration
	// MaxBodyBytes caps one request body (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// Registry receives service metrics (nil = a fresh registry;
	// retrieve it with Server.Registry).
	Registry *telemetry.Registry
	// Trace, when non-nil, receives sampled per-request trace events.
	Trace telemetry.TraceSink
	// TraceSample emits every Nth request to Trace (0 with Trace set =
	// every request).
	TraceSample int
	// Engine selects the request-path execution backend: EngineFast
	// (the default; "" normalizes to it) routes pooled parses through
	// internal/engine's lowered tables with lockstep batching,
	// EngineSim pins everything to the cycle-accurate simulator.
	// Guarded parses (Chaos with a verify mode) always run the
	// simulator — detection needs execution hooks — and every
	// simulator-served request is counted on
	// engine_fallback_total{reason}.
	Engine string
	// Chaos, when non-nil, arms fault injection and the
	// checkpoint/replay recovery layer (see ChaosOptions). nil keeps
	// the unguarded request path; bank kills still shrink worker pools.
	Chaos *ChaosOptions
	// Store, when non-nil, makes the control plane crash-durable:
	// registry mutations are write-ahead journaled before taking effect,
	// startup replays the journal (journal state overrides
	// Languages/Chaos.Verify when records exist), and durable parse
	// sessions persist checkpoints through Store.Checkpoints. The caller
	// keeps ownership: close the store after Drain.
	Store *store.Store
	// Resolver maps a grammar name to its definition for admin adds of
	// grammars not in the startup set and for journal replay (nil =
	// built-ins only, via ResolveBuiltin).
	Resolver func(name string) *lang.Language
	// FlightSize is the capacity of the flight recorder's recent ring —
	// the last N completed requests inspectable at /v1/debug/requests
	// (0 = telemetry.DefaultFlightSize). The notable (slow/error) ring is
	// sized to a quarter of it.
	FlightSize int
	// SlowThreshold is the latency at which a completed request is also
	// retained in the flight recorder's notable ring, surviving bursts of
	// healthy traffic (0 = telemetry.DefaultSlowNS).
	SlowThreshold time.Duration
	// LatencyTarget is the parse-latency target the AIMD concurrency
	// limiter steers toward (0 = DefaultLatencyTarget). Observed parse
	// latency above the target halves the global execution-token limit;
	// sustained good samples raise it back toward the fabric ceiling.
	LatencyTarget time.Duration
	// Brownout arms the degraded mode: when the limiter collapses to
	// its floor and bad samples keep arriving, whole tenants are shed
	// (429, lowest effective weight first) until the limiter recovers.
	// Off by default — shedding entire tenants is an operator decision.
	Brownout bool
}

// tenantSet is one immutable registry snapshot: the loaded grammars in
// registration order. Lookups load the current snapshot; mutations
// build a new set and atomically replace it, so readers never see a
// half-updated registry.
type tenantSet struct {
	byName map[string]*grammarEntry
	names  []string // registration order, for /v1/grammars
}

// Server is a loaded, ready-to-serve grammar registry plus its HTTP
// surface. Construct with New, mount Handler, stop with Drain.
type Server struct {
	opts    Options
	reg     *telemetry.Registry
	cfg     arch.Config
	tenants atomic.Pointer[tenantSet]
	mux     *http.ServeMux
	m       serviceMetrics
	fabric  *arch.Fabric
	st      *store.Store

	// Control-plane state: adminMu serializes mutations (the data plane
	// never takes it); known is every grammar name the server can
	// resolve to a definition, adminMu-guarded after New; weights holds
	// the journaled fair-share overrides by grammar name (adminMu-guarded
	// after New, applied to entries as they are built).
	adminMu sync.Mutex
	known   map[string]*lang.Language
	weights map[string]int

	// Overload control (overload.go): the AIMD execution-token limiter,
	// the weighted-fair scheduler arbitrating those tokens across
	// tenants, and the brownout ladder level (0 = nothing shed).
	limiter       *aimd
	sched         *wfq
	brownoutLevel atomic.Int32

	sessions sessionJar

	// drainMu orders in-flight registration against Drain and entry
	// retirement: requests register on the wait groups inside a read
	// section (admitRequest); Drain flips the flag and retireEntry
	// barriers on the write side, so every Add happens-before the
	// corresponding Wait and no request slips past a completed drain.
	drainMu  sync.RWMutex
	draining atomic.Bool
	stop     chan struct{} // closed by Drain; releases retiring entries
	inflight sync.WaitGroup
	traceSeq atomic.Int64
	started  time.Time

	// Readiness, split from liveness for fleet routing (/readyz):
	// notReady is flipped by SetReady(false) — wired to SIGTERM in
	// cmd/aspend before Drain begins — and retiring counts in-progress
	// hitless-swap retirements, so a router stops placing new work on
	// this node before it starts refusing it. Liveness (/healthz) is
	// unaffected: an unready node still answers in-flight work.
	notReady atomic.Bool
	retiring atomic.Int32

	// Request-scoped tracing (trace.go): the flight recorder behind
	// /v1/debug/requests, and the trace-ID generator state.
	flight    *telemetry.FlightRecorder
	traceBase uint64
	idSeq     atomic.Uint64
}

// ResolveBuiltin maps a built-in grammar name (the four Table III
// languages plus MiniC) to its definition, nil if unknown. It is the
// default Options.Resolver and the name validator cmd/aspend uses.
func ResolveBuiltin(name string) *lang.Language {
	if l := lang.ByName(name); l != nil {
		return l
	}
	if name == "MiniC" {
		return lang.MiniC()
	}
	return nil
}

// New compiles and places every grammar, sizes the per-grammar worker
// pools from the fabric partition, and builds the HTTP surface. All
// compile work happens here — the request path performs none. With a
// durable store attached, a non-empty journal overrides the flag-derived
// membership and verify mode (the journal is the source of truth after
// the first boot); an empty journal is bootstrapped from them.
func New(opts Options) (*Server, error) {
	langs := opts.Languages
	if langs == nil {
		langs = append(lang.All(), lang.MiniC())
	}
	if len(langs) == 0 {
		return nil, fmt.Errorf("serve: no grammars to load")
	}
	cfg := opts.Arch
	if cfg == (arch.Config{}) {
		cfg = arch.DefaultConfig()
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.QueueDepth < 0 {
		opts.QueueDepth = 0
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = DefaultRequestTimeout
	}
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	eng, err := ParseEngine(opts.Engine)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	opts.Engine = eng
	known := make(map[string]*lang.Language, len(langs))
	for _, l := range langs {
		known[l.Name] = l
	}
	// Journal replay: with recorded mutations, the journal's membership
	// and verify mode override the configured ones — flags describe the
	// first boot, the journal describes every boot since.
	replayed := false
	weights := map[string]int{}
	if opts.Store != nil && len(opts.Store.Replay.Records) > 0 {
		names, mode, uploads, wts, err := replayRegistry(opts.Store.Replay.Records)
		if err != nil {
			return nil, err
		}
		weights = wts
		langs = make([]*lang.Language, 0, len(names))
		for _, n := range names {
			l := uploads[n]
			if l == nil {
				l = known[n]
			}
			if l == nil {
				l = resolveWith(opts.Resolver, n)
			}
			if l == nil {
				return nil, fmt.Errorf("serve: journal names unresolvable grammar %q", n)
			}
			known[n] = l
			langs = append(langs, l)
		}
		if mode != "" {
			vm, perr := verify.ParseMode(mode)
			if perr != nil {
				return nil, fmt.Errorf("serve: journaled verify mode: %w", perr)
			}
			opts.Chaos = withVerifyMode(opts.Chaos, vm)
		}
		replayed = true
	}
	if opts.Chaos != nil {
		c := opts.Chaos.withDefaults()
		opts.Chaos = &c
	}
	s := &Server{
		opts:    opts,
		reg:     reg,
		cfg:     cfg,
		known:   known,
		weights: weights,
		m:       newServiceMetrics(reg),
		fabric:  arch.NewFabric(cfg.FabricBanksOrDefault()),
		st:      opts.Store,
		stop:    make(chan struct{}),
		started: time.Now(),
		flight: telemetry.NewFlightRecorder(opts.FlightSize, opts.FlightSize/4,
			int64(opts.SlowThreshold), phaseNames),
	}
	s.limiter = newAIMD(opts.LatencyTarget, 1)
	s.sched = newWFQ(s.limiter)
	s.traceBase = uint64(s.started.UnixNano())
	s.fabric.EnableTelemetry(reg)
	if s.st != nil {
		s.m.journalReplay.SetInt(int64(len(s.st.Replay.Records)))
	}
	ts, err := s.buildTenantSet(langs)
	if err != nil {
		return nil, err
	}
	s.tenants.Store(ts)
	s.applyOverloadPlan(ts)
	// First boot with a durable store: seed the journal so a crash
	// before any mutation still replays to this exact registry.
	if s.st != nil && !replayed {
		for _, name := range ts.names {
			if err := s.journalAppend(store.Record{Op: store.OpAddGrammar, Name: name}); err != nil {
				return nil, fmt.Errorf("serve: bootstrap journal: %w", err)
			}
		}
		mode := verifyModeOf(s.opts.Chaos).String()
		if err := s.journalAppend(store.Record{Op: store.OpVerifyMode, Name: mode}); err != nil {
			return nil, fmt.Errorf("serve: bootstrap journal: %w", err)
		}
		if err := s.journalPartition(ts); err != nil {
			return nil, fmt.Errorf("serve: bootstrap journal: %w", err)
		}
	}
	s.mux = s.buildMux()
	return s, nil
}

// replayRegistry folds journaled mutations into the surviving
// membership (in add order), the last recorded verify mode, and the
// re-admitted tenant uploads. Replay is forgiving about redundant
// mutations — an add of a loaded grammar or a remove/swap of a missing
// one is a no-op, not an error — because the journal already survived
// CRC and sequence checks; only a final state the server cannot serve
// (empty registry, or an upload record that no longer admits) is fatal.
func replayRegistry(recs []store.Record) (names []string, mode string, uploads map[string]*lang.Language, weights map[string]int, err error) {
	loaded := make(map[string]bool)
	uploadRec := make(map[string]store.Record)
	weights = make(map[string]int)
	for _, r := range recs {
		switch r.Op {
		case store.OpAddGrammar:
			if !loaded[r.Name] {
				loaded[r.Name] = true
				names = append(names, r.Name)
			}
		case store.OpUpload:
			// An upload is an add whose definition travels in the record.
			// The latest upload wins the definition even across a
			// remove/re-upload cycle, matching the live known-set behavior.
			uploadRec[r.Name] = r
			if !loaded[r.Name] {
				loaded[r.Name] = true
				names = append(names, r.Name)
			}
		case store.OpRemoveGrammar:
			if loaded[r.Name] {
				delete(loaded, r.Name)
				for i, n := range names {
					if n == r.Name {
						names = append(names[:i], names[i+1:]...)
						break
					}
				}
			}
		case store.OpVerifyMode:
			mode = r.Name
		case store.OpWeight:
			// The last override per grammar wins; an override for a
			// later-removed grammar is kept — if the grammar comes back,
			// the operator's weight decision still stands.
			weights[r.Name] = r.Weight
		case store.OpSwapGrammar, store.OpPartition:
			// Swaps rebuild an entry without changing membership; the
			// partition is recomputed from membership on every boot (the
			// record exists for offline inspection and cross-checks).
		}
	}
	if len(names) == 0 {
		return nil, "", nil, nil, fmt.Errorf("serve: journal replays to an empty registry")
	}
	// Re-run the identical admission for every surviving upload.
	// Admission is deterministic, so this can only fail on version skew
	// (a checker grown stricter than the one that admitted the machine)
	// — surfaced as a boot error, never as a silently weaker machine.
	uploads = make(map[string]*lang.Language)
	for _, n := range names {
		r, ok := uploadRec[n]
		if !ok {
			continue
		}
		res, aerr := admit.Admit(r.Name, r.Format, r.Source, admit.Limits{
			MaxStates: r.MaxStates, MaxDepth: r.MaxDepth, MaxTableKB: r.MaxTableKB})
		if aerr != nil {
			return nil, "", nil, nil, fmt.Errorf("serve: journaled upload %q (%s) no longer admits: %w", n, r.Format, aerr)
		}
		uploads[n] = res.Language
	}
	return names, mode, uploads, weights, nil
}

func resolveWith(r func(string) *lang.Language, name string) *lang.Language {
	if r != nil {
		if l := r(name); l != nil {
			return l
		}
	}
	return ResolveBuiltin(name)
}

// withVerifyMode overlays a journaled verify mode onto the configured
// chaos options without mutating the caller's struct.
func withVerifyMode(c *ChaosOptions, vm verify.Mode) *ChaosOptions {
	if c == nil {
		if vm == verify.ModeOff {
			return nil
		}
		return &ChaosOptions{Verify: vm}
	}
	cp := *c
	cp.Verify = vm
	return &cp
}

// buildTenantSet compiles and places langs as a complete registry
// snapshot: every grammar gets an equal, contiguous bank share, and one
// worker slot per context its share sustains. The range bounds let bank
// kills be attributed to their tenant. The last tenant absorbs the
// division remainder so every physical bank has an owner — an unowned
// bank's death would shrink no pool and be invisible to injectors. With
// more grammars than banks (share clamped to 1), tenants past the
// fabric end get empty ranges: they still serve (CapacityFor floors the
// pool at one slot) but own no physical banks, so kills never degrade
// them.
func (s *Server) buildTenantSet(langs []*lang.Language) (*tenantSet, error) {
	ts := &tenantSet{byName: make(map[string]*grammarEntry, len(langs))}
	share := s.cfg.FabricBanksOrDefault() / len(langs)
	if share < 1 {
		share = 1
	}
	for i, l := range langs {
		if _, dup := ts.byName[l.Name]; dup {
			discardTenantSet(ts)
			return nil, fmt.Errorf("serve: duplicate grammar %q", l.Name)
		}
		g, err := newGrammarEntry(s, l, share)
		if err != nil {
			discardTenantSet(ts)
			return nil, fmt.Errorf("serve: grammar %s: %w", l.Name, err)
		}
		g.bankLo = i * share
		g.bankHi = g.bankLo + share
		if i == len(langs)-1 || g.bankHi > s.fabric.Total() {
			g.bankHi = s.fabric.Total()
		}
		if g.bankLo > g.bankHi {
			g.bankLo = g.bankHi
		}
		g.initChaos(s)
		ts.byName[l.Name] = g
		ts.names = append(ts.names, l.Name)
	}
	return ts, nil
}

// discardTenantSet releases entries that were built but never
// published (an aborted mutation): closing each entry's stop channel
// reclaims any parked-slot goroutines created against a degraded
// fabric.
func discardTenantSet(ts *tenantSet) {
	if ts == nil {
		return
	}
	for _, g := range ts.byName {
		g.closeStop()
	}
}

// grammar returns the named entry from the current snapshot, nil if
// not loaded.
func (s *Server) grammar(name string) *grammarEntry {
	return s.tenants.Load().byName[name]
}

// tenantNames returns the current snapshot's registration order.
func (s *Server) tenantNames() []string { return s.tenants.Load().names }

// Registry returns the metrics registry the server reports into.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Grammars describes every loaded grammar in registration order — the
// same payload /v1/grammars serves.
func (s *Server) Grammars() []GrammarInfo {
	ts := s.tenants.Load()
	infos := make([]GrammarInfo, 0, len(ts.names))
	for _, name := range ts.names {
		infos = append(infos, ts.byName[name].info(s.opts.QueueDepth))
	}
	return infos
}

// Handler returns the service mux: the /v1 API (including the admin
// surface), /healthz, and the telemetry debug endpoints (/metrics,
// /metrics.json, /debug/vars, /debug/pprof) on the same mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// SetReady flips the node's readiness signal (/readyz). cmd/aspend
// calls SetReady(false) the moment SIGTERM arrives — before Drain —
// so a health-checking router stops routing to this node while it can
// still answer; Drain itself also flips it as a backstop for embedders
// that never wire signals.
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// Ready reports whether the node is accepting new routed work: not
// marked unready, not draining, and not mid-retirement of a swapped
// entry (a brief unready blip during hitless swaps keeps a router from
// racing a retiring entry's drain barrier).
func (s *Server) Ready() bool {
	return !s.notReady.Load() && !s.draining.Load() && s.retiring.Load() == 0
}

// Drain stops admitting new requests (they get 503) and waits for every
// in-flight request to finish, or for ctx to expire. It is the
// service-level half of graceful shutdown; pair it with
// http.Server.Shutdown, which drains the connection level. Admin
// mutations race-free reject after Drain: the draining flag is checked
// under adminMu before any journal write, so a drained server never
// appends another record.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		// Take adminMu once so any mutation already journaling finishes
		// publishing before the drain proceeds; later mutations see the
		// flag and reject without touching the journal. The drainMu
		// write-section is the barrier against admission: after it, any
		// request still deciding observes the flag and rejects, so no
		// registration can race the Wait below.
		s.adminMu.Lock()
		s.drainMu.Lock()
		close(s.stop) // release parked-slot and retiring-entry goroutines
		for _, g := range s.tenants.Load().byName {
			g.closeStop()
		}
		s.drainMu.Unlock()
		s.adminMu.Unlock()
	}
	s.m.draining.SetInt(1)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with requests still in flight")
	}
}
