// Package serve is the concurrent multi-tenant parsing service over the
// simulated bank fabric — the first consumer of the paper's headline
// claim that throughput comes from parallelism (§I, §IV-B: "hundreds of
// different DPDAs in parallel as any number of LLC SRAM arrays can be
// re-purposed"). A Server loads a set of named grammars once at
// startup, compiling each into an hDPDA and placing it onto banks, and
// then answers parse jobs over HTTP: POST /v1/parse/{grammar} streams
// the request body chunk-by-chunk straight into a stream.Parser, so an
// arbitrarily large document is parsed as it arrives, in the paper's
// MBs-to-GBs operating regime.
//
// Concurrency mirrors the architecture. The LLC contributes a fixed
// bank budget (arch.Config.FabricBanks); each grammar's machine
// occupies a measured number of banks per execution context; the fabric
// is statically partitioned across the loaded grammars and each grammar
// gets one worker slot per context its share sustains (arch.CapacityFor).
// Service concurrency is therefore bank-level parallelism, not an
// arbitrary GOMAXPROCS-shaped pool.
//
// Production machinery: a bounded per-grammar admission queue answers
// 429 + Retry-After instead of growing without bound; every request
// carries a context deadline and honors client cancellation; parser and
// copy-buffer state is pooled with sync.Pool so the steady-state request
// path performs zero compiles and O(1) allocations (pinned by
// alloc_test.go); Drain stops admission and waits for in-flight work
// (wired to SIGTERM in cmd/aspend); and per-grammar/per-outcome metrics
// plus sampled request traces flow through the internal/telemetry
// registry, served on the same mux as the debug endpoints.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"aspen/internal/arch"
	"aspen/internal/lang"
	"aspen/internal/telemetry"
)

// Defaults for the zero Options value.
const (
	DefaultQueueDepth     = 64
	DefaultRequestTimeout = 30 * time.Second
	DefaultMaxBodyBytes   = 64 << 20
	copyBufSize           = 32 << 10
)

// Options configures a Server. The zero value serves the five built-in
// languages on the paper's default fabric.
type Options struct {
	// Languages is the grammar set to load (nil = the four Table III
	// languages plus MiniC). Names are the URL path segment.
	Languages []*lang.Language
	// Arch parameterizes the simulated fabric the worker-pool widths are
	// derived from (zero value = arch.DefaultConfig()).
	Arch arch.Config
	// QueueDepth bounds each grammar's admission queue — requests
	// waiting for a worker slot beyond the running set. A full queue
	// answers 429 with Retry-After (0 = DefaultQueueDepth, negative = 0:
	// no waiting room, admission requires a free slot).
	QueueDepth int
	// Workers overrides the per-grammar worker-slot count (0 = derived
	// from the grammar's fabric share; see Capacity accounting).
	Workers int
	// RequestTimeout bounds one request end-to-end, queue wait included
	// (0 = DefaultRequestTimeout).
	RequestTimeout time.Duration
	// MaxBodyBytes caps one request body (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// Registry receives service metrics (nil = a fresh registry;
	// retrieve it with Server.Registry).
	Registry *telemetry.Registry
	// Trace, when non-nil, receives sampled per-request trace events.
	Trace telemetry.TraceSink
	// TraceSample emits every Nth request to Trace (0 with Trace set =
	// every request).
	TraceSample int
	// Chaos, when non-nil, arms fault injection and the
	// checkpoint/replay recovery layer (see ChaosOptions). nil keeps
	// the unguarded request path; bank kills still shrink worker pools.
	Chaos *ChaosOptions
}

// Server is a loaded, ready-to-serve grammar registry plus its HTTP
// surface. Construct with New, mount Handler, stop with Drain.
type Server struct {
	opts     Options
	reg      *telemetry.Registry
	cfg      arch.Config
	grammars map[string]*grammarEntry
	names    []string // registration order, for /v1/grammars
	mux      *http.ServeMux
	m        serviceMetrics
	fabric   *arch.Fabric

	draining atomic.Bool
	stop     chan struct{} // closed by Drain; reclaims parked-slot goroutines
	inflight sync.WaitGroup
	traceSeq atomic.Int64
	started  time.Time
}

// New compiles and places every grammar, sizes the per-grammar worker
// pools from the fabric partition, and builds the HTTP surface. All
// compile work happens here — the request path performs none.
func New(opts Options) (*Server, error) {
	langs := opts.Languages
	if langs == nil {
		langs = append(lang.All(), lang.MiniC())
	}
	if len(langs) == 0 {
		return nil, fmt.Errorf("serve: no grammars to load")
	}
	cfg := opts.Arch
	if cfg == (arch.Config{}) {
		cfg = arch.DefaultConfig()
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	if opts.QueueDepth == 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.QueueDepth < 0 {
		opts.QueueDepth = 0
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = DefaultRequestTimeout
	}
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.Chaos != nil {
		c := opts.Chaos.withDefaults()
		opts.Chaos = &c
	}
	s := &Server{
		opts:     opts,
		reg:      reg,
		cfg:      cfg,
		grammars: make(map[string]*grammarEntry, len(langs)),
		m:        newServiceMetrics(reg),
		fabric:   arch.NewFabric(cfg.FabricBanksOrDefault()),
		stop:     make(chan struct{}),
		started:  time.Now(),
	}
	s.fabric.EnableTelemetry(reg)
	// Static fabric partition: every grammar gets an equal, contiguous
	// bank share, and one worker slot per context its share sustains.
	// The range bounds let bank kills be attributed to their tenant. The
	// last tenant absorbs the division remainder so every physical bank
	// has an owner — an unowned bank's death would shrink no pool and be
	// invisible to injectors. With more grammars than banks (share
	// clamped to 1), tenants past the fabric end get empty ranges: they
	// still serve (CapacityFor floors the pool at one slot) but own no
	// physical banks, so kills never degrade them.
	share := cfg.FabricBanksOrDefault() / len(langs)
	if share < 1 {
		share = 1
	}
	for i, l := range langs {
		if _, dup := s.grammars[l.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate grammar %q", l.Name)
		}
		g, err := newGrammarEntry(s, l, share)
		if err != nil {
			return nil, fmt.Errorf("serve: grammar %s: %w", l.Name, err)
		}
		g.bankLo = i * share
		g.bankHi = g.bankLo + share
		if i == len(langs)-1 || g.bankHi > s.fabric.Total() {
			g.bankHi = s.fabric.Total()
		}
		if g.bankLo > g.bankHi {
			g.bankLo = g.bankHi
		}
		g.initChaos(s)
		s.grammars[l.Name] = g
		s.names = append(s.names, l.Name)
	}
	s.mux = s.buildMux()
	return s, nil
}

// Registry returns the metrics registry the server reports into.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Grammars describes every loaded grammar in registration order — the
// same payload /v1/grammars serves.
func (s *Server) Grammars() []GrammarInfo {
	infos := make([]GrammarInfo, 0, len(s.names))
	for _, name := range s.names {
		infos = append(infos, s.grammars[name].info(s.opts.QueueDepth))
	}
	return infos
}

// Handler returns the service mux: the /v1 API, /healthz, and the
// telemetry debug endpoints (/metrics, /metrics.json, /debug/vars,
// /debug/pprof) on the same mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops admitting new requests (they get 503) and waits for every
// in-flight request to finish, or for ctx to expire. It is the
// service-level half of graceful shutdown; pair it with
// http.Server.Shutdown, which drains the connection level.
func (s *Server) Drain(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		close(s.stop) // release parked-slot goroutines (see applyBankLoss)
	}
	s.m.draining.SetInt(1)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with requests still in flight")
	}
}
