package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"aspen/internal/admit"
	"aspen/internal/lang"
	"aspen/internal/store"
)

// Admin control plane: dynamic registry mutations with hitless
// publication and write-ahead durability.
//
// Every mutation follows the same protocol under adminMu:
//
//  1. validate against the current snapshot (reject while draining —
//     before any journal write, so a drained server never appends);
//  2. build the replacement entries off to the side (compile, place,
//     warm pools) — the serving snapshot is untouched and requests keep
//     flowing against it;
//  3. journal the mutation (the commit point: an fsync'd record; a
//     crash after this replays the mutation, a crash before replays the
//     old state; the advisory partition record is written first so the
//     op record is always the last thing that becomes durable);
//  4. atomically publish the new snapshot;
//  5. retire replaced entries: wait for their in-flight requests, then
//     release their parked-slot goroutines.
//
// Requests never block on a mutation: lookups read the snapshot
// pointer, in-flight work finishes on the entry it started on, and the
// swap is observable only as new requests landing on the new entry —
// the zero-drop property the hitless-reload test pins.

// Mutation failure modes the HTTP layer maps to statuses.
var (
	// ErrDraining rejects mutations after Drain.
	ErrDraining = errors.New("serve: server is draining")
	// ErrGrammarLoaded rejects adding a grammar that is already loaded.
	ErrGrammarLoaded = errors.New("serve: grammar already loaded")
	// ErrGrammarUnknown rejects operating on a name that resolves to no
	// loaded grammar (remove/swap) or no known definition (add).
	ErrGrammarUnknown = errors.New("serve: unknown grammar")
	// ErrLastGrammar rejects removing the only loaded grammar.
	ErrLastGrammar = errors.New("serve: cannot remove the last grammar")
)

// journalAppend write-ahead journals one mutation record (no-op
// without a durable store).
func (s *Server) journalAppend(r store.Record) error {
	if s.st == nil {
		return nil
	}
	t0 := time.Now()
	err := s.st.Journal.Append(r)
	s.m.journalCommitNS.ObserveInt(time.Since(t0).Nanoseconds())
	if err != nil {
		return fmt.Errorf("serve: journal append: %w", err)
	}
	s.m.journalAppends.Inc()
	return nil
}

// journalPartition records the fabric partition of ts — advisory state
// (replay recomputes the partition from membership) kept in the journal
// so an operator can read bank ownership history offline.
func (s *Server) journalPartition(ts *tenantSet) error {
	if s.st == nil {
		return nil
	}
	rec := store.Record{Op: store.OpPartition, Banks: s.fabric.Total()}
	for _, n := range ts.names {
		g := ts.byName[n]
		rec.Tenants = append(rec.Tenants, store.TenantRange{Name: n, Lo: g.bankLo, Hi: g.bankHi})
	}
	return s.journalAppend(rec)
}

// lookupLang resolves a grammar name to its definition: the known set
// first (startup languages and previously resolved names), then the
// configured resolver, then the built-ins. Caller holds adminMu.
func (s *Server) lookupLang(name string) *lang.Language {
	if l := s.known[name]; l != nil {
		return l
	}
	if l := resolveWith(s.opts.Resolver, name); l != nil {
		s.known[name] = l
		return l
	}
	return nil
}

// publish swaps the snapshot and retires every entry of old that next
// no longer references. Caller holds adminMu.
func (s *Server) publish(old, next *tenantSet) {
	s.tenants.Store(next)
	// Membership changed: recompute the overload plan (AIMD ceiling,
	// brownout shed ranks) against the new tenant set.
	s.applyOverloadPlan(next)
	s.m.reloadSwaps.Inc()
	for _, name := range old.names {
		g := old.byName[name]
		if next.byName[name] != g {
			s.retireEntry(g)
		}
	}
}

// retireEntry releases a replaced entry once its in-flight requests
// finish (or the server drains, whichever first) by closing its stop
// channel, which reclaims any parked-slot goroutines. The drainMu
// write-section is the retirement barrier: the new snapshot was
// published before this runs, so once the barrier is crossed every
// later admission resolves the replacement entry — no request can
// register on g after its Wait begins.
func (s *Server) retireEntry(g *grammarEntry) {
	// Readiness dips while the retirement is in flight (incremented
	// here, synchronously, so the mutation's caller observes the blip
	// before its response): a router health-checking /readyz pauses new
	// placements until the old entry has fully drained.
	s.retiring.Add(1)
	go func() {
		defer s.retiring.Add(-1)
		s.drainMu.Lock()
		//lint:ignore SA2001 empty write-section is the barrier itself
		s.drainMu.Unlock()
		done := make(chan struct{})
		go func() {
			g.inflight.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-s.stop:
		}
		g.closeStop()
	}()
}

// currentLangs is the serving membership as language definitions, in
// registration order.
func currentLangs(ts *tenantSet) []*lang.Language {
	langs := make([]*lang.Language, 0, len(ts.names))
	for _, n := range ts.names {
		langs = append(langs, ts.byName[n].lang)
	}
	return langs
}

// AddGrammar loads name into the registry. Membership changes
// repartition the fabric, so every entry is rebuilt; old entries drain
// and retire.
func (s *Server) AddGrammar(name string) error {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	if s.draining.Load() {
		return ErrDraining
	}
	cur := s.tenants.Load()
	if _, ok := cur.byName[name]; ok {
		return fmt.Errorf("%w: %q", ErrGrammarLoaded, name)
	}
	l := s.lookupLang(name)
	if l == nil {
		return fmt.Errorf("%w: %q", ErrGrammarUnknown, name)
	}
	next, err := s.buildTenantSet(append(currentLangs(cur), l))
	if err != nil {
		return err
	}
	if err := s.journalPartition(next); err != nil {
		discardTenantSet(next)
		return err
	}
	if err := s.journalAppend(store.Record{Op: store.OpAddGrammar, Name: name}); err != nil {
		discardTenantSet(next)
		return err
	}
	s.publish(cur, next)
	return nil
}

// UploadGrammar admits a tenant-uploaded machine definition and loads
// it into the registry. The admission pipeline (internal/admit) runs
// before any journal write: a rejected upload mutates nothing and
// returns a *admit.Rejection carrying machine-readable diagnostics. An
// admitted upload journals the full (format, source, limits) tuple —
// replay re-runs the identical admission at boot, so the proven stack
// bound and machine fingerprint survive kill -9 bit-for-bit.
func (s *Server) UploadGrammar(name, format string, source []byte, lim admit.Limits) (*admit.Result, error) {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	if s.draining.Load() {
		return nil, ErrDraining
	}
	cur := s.tenants.Load()
	if _, ok := cur.byName[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrGrammarLoaded, name)
	}
	// Normalize once and journal the normalized limits, so replay
	// admission sees exactly the ceilings this admission enforced even
	// if defaults change across builds.
	lim = lim.Normalize()
	res, err := admit.Admit(name, format, source, lim)
	if err != nil {
		var rej *admit.Rejection
		if errors.As(err, &rej) {
			s.countRejection(rej)
		}
		return nil, err
	}
	next, err := s.buildTenantSet(append(currentLangs(cur), res.Language))
	if err != nil {
		return nil, err
	}
	if err := s.journalPartition(next); err != nil {
		discardTenantSet(next)
		return nil, err
	}
	if err := s.journalAppend(store.Record{
		Op: store.OpUpload, Name: name, Format: format, Source: source,
		MaxStates: lim.MaxStates, MaxDepth: lim.MaxDepth, MaxTableKB: lim.MaxTableKB,
	}); err != nil {
		discardTenantSet(next)
		return nil, err
	}
	s.known[name] = res.Language
	s.publish(cur, next)
	if c := s.m.admitAdmitted[format]; c != nil {
		c.Inc()
	}
	return res, nil
}

// RemoveGrammar unloads name. The last grammar cannot be removed — an
// empty registry serves nothing and would refuse to boot from its own
// journal.
func (s *Server) RemoveGrammar(name string) error {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	if s.draining.Load() {
		return ErrDraining
	}
	cur := s.tenants.Load()
	if _, ok := cur.byName[name]; !ok {
		return fmt.Errorf("%w: %q", ErrGrammarUnknown, name)
	}
	if len(cur.names) == 1 {
		return fmt.Errorf("%w: %q", ErrLastGrammar, name)
	}
	langs := make([]*lang.Language, 0, len(cur.names)-1)
	for _, n := range cur.names {
		if n != name {
			langs = append(langs, cur.byName[n].lang)
		}
	}
	next, err := s.buildTenantSet(langs)
	if err != nil {
		return err
	}
	if err := s.journalPartition(next); err != nil {
		discardTenantSet(next)
		return err
	}
	if err := s.journalAppend(store.Record{Op: store.OpRemoveGrammar, Name: name}); err != nil {
		discardTenantSet(next)
		return err
	}
	s.publish(cur, next)
	return nil
}

// SwapGrammar hitlessly rebuilds name's entry in place: same bank
// range, fresh compile and pools. In-flight requests finish on the old
// entry; new requests land on the new one; nothing is dropped.
func (s *Server) SwapGrammar(name string) error {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	if s.draining.Load() {
		return ErrDraining
	}
	cur := s.tenants.Load()
	old, ok := cur.byName[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrGrammarUnknown, name)
	}
	repl, err := s.rebuildEntry(old)
	if err != nil {
		return err
	}
	next := cloneWith(cur, name, repl)
	if err := s.journalAppend(store.Record{Op: store.OpSwapGrammar, Name: name}); err != nil {
		repl.closeStop()
		return err
	}
	s.publish(cur, next)
	return nil
}

// Reload hitlessly rebuilds every loaded grammar (the SIGHUP path) and
// returns how many entries were swapped.
func (s *Server) Reload() (int, error) {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	if s.draining.Load() {
		return 0, ErrDraining
	}
	cur := s.tenants.Load()
	next := &tenantSet{
		byName: make(map[string]*grammarEntry, len(cur.names)),
		names:  append([]string(nil), cur.names...),
	}
	for _, name := range cur.names {
		repl, err := s.rebuildEntry(cur.byName[name])
		if err != nil {
			discardTenantSet(next)
			return 0, fmt.Errorf("serve: reload %s: %w", name, err)
		}
		next.byName[name] = repl
	}
	for _, name := range next.names {
		if err := s.journalAppend(store.Record{Op: store.OpSwapGrammar, Name: name}); err != nil {
			discardTenantSet(next)
			return 0, err
		}
	}
	s.publish(cur, next)
	return len(next.names), nil
}

// rebuildEntry constructs a replacement for old on the same bank range
// with the same fabric share. Caller holds adminMu.
func (s *Server) rebuildEntry(old *grammarEntry) (*grammarEntry, error) {
	l := s.lookupLang(old.name)
	if l == nil {
		l = old.lang
	}
	g, err := newGrammarEntry(s, l, old.cap.FabricBanks)
	if err != nil {
		return nil, fmt.Errorf("serve: grammar %s: %w", old.name, err)
	}
	g.bankLo, g.bankHi = old.bankLo, old.bankHi
	g.initChaos(s)
	return g, nil
}

// cloneWith copies ts with name's entry replaced.
func cloneWith(ts *tenantSet, name string, g *grammarEntry) *tenantSet {
	next := &tenantSet{
		byName: make(map[string]*grammarEntry, len(ts.byName)),
		names:  append([]string(nil), ts.names...),
	}
	for n, e := range ts.byName {
		next.byName[n] = e
	}
	next.byName[name] = g
	return next
}

// adminRequest is the POST /v1/admin/grammars body. The upload op adds
// format/source/limits; the other ops ignore them.
type adminRequest struct {
	Op      string `json:"op"` // add | remove | swap | reload | upload | weight
	Grammar string `json:"grammar"`
	// Upload fields: the source format ("grammar" | "mnrl" | "pda"),
	// the machine definition text, and optional admission ceilings.
	Format string       `json:"format,omitempty"`
	Source string       `json:"source,omitempty"`
	Limits admit.Limits `json:"limits,omitempty"`
	// Weight is the scheduling weight for the weight op: it overrides
	// the cost-derived default share for Grammar in the weighted-fair
	// scheduler (journaled; survives restart).
	Weight int `json:"weight,omitempty"`
}

// adminBodyLimit bounds the admin request body: the admission source
// ceiling plus generous JSON-escaping and envelope overhead.
const adminBodyLimit = int64(admit.MaxSourceBytes)*4 + 1<<16

// AdminResponse is the success body of an admin mutation.
type AdminResponse struct {
	Op       string `json:"op"`
	Grammar  string `json:"grammar,omitempty"`
	Swapped  int    `json:"swapped,omitempty"`
	Admitted bool   `json:"admitted,omitempty"`
	// Upload admission facts: the proven stack depth bound and machine
	// size of the newly admitted machine.
	StackBound int `json:"stackBound,omitempty"`
	States     int `json:"states,omitempty"`
	// Weight echoes the applied scheduling weight for the weight op.
	Weight   int           `json:"weight,omitempty"`
	Grammars []GrammarInfo `json:"grammars"`
}

// RejectionResponse is the 422 body of a rejected upload: the
// machine-readable admission diagnostics, verbatim from internal/admit.
type RejectionResponse struct {
	Op          string             `json:"op"`
	Grammar     string             `json:"grammar"`
	Format      string             `json:"format"`
	Admitted    bool               `json:"admitted"`
	Error       string             `json:"error"`
	Diagnostics []admit.Diagnostic `json:"diagnostics"`
}

func (s *Server) handleAdminGrammars(w http.ResponseWriter, r *http.Request) {
	var req adminRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, adminBodyLimit)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "malformed admin request: " + err.Error()})
		return
	}
	resp := AdminResponse{Op: req.Op, Grammar: req.Grammar}
	var err error
	switch req.Op {
	case "add":
		err = s.AddGrammar(req.Grammar)
	case "remove":
		err = s.RemoveGrammar(req.Grammar)
	case "swap":
		err = s.SwapGrammar(req.Grammar)
	case "reload":
		resp.Swapped, err = s.Reload()
	case "weight":
		err = s.SetWeight(req.Grammar, req.Weight)
		resp.Weight = req.Weight
	case "upload":
		sp := s.beginSpan(w, r)
		sp.grammar = req.Grammar
		t0 := sp.now()
		var res *admit.Result
		res, err = s.UploadGrammar(req.Grammar, req.Format, []byte(req.Source), req.Limits)
		sp.addSince(phaseAdmit, t0)
		var rej *admit.Rejection
		if errors.As(err, &rej) {
			sp.outcome, sp.status = outcomeRejected, http.StatusUnprocessableEntity
			s.recordSpan(&sp)
			writeJSON(w, http.StatusUnprocessableEntity, RejectionResponse{
				Op: req.Op, Grammar: req.Grammar, Format: req.Format,
				Error: rej.Error(), Diagnostics: rej.Diagnostics,
			})
			return
		}
		if err == nil {
			resp.Admitted = true
			resp.StackBound = res.StackBound
			resp.States = res.States
			sp.g = s.tenants.Load().byName[req.Grammar]
		}
		s.recordSpan(&sp)
	default:
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "unknown admin op " + fmt.Sprintf("%q", req.Op)})
		return
	}
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrDraining):
			status = http.StatusServiceUnavailable
		case errors.Is(err, ErrGrammarUnknown):
			status = http.StatusNotFound
		case errors.Is(err, ErrGrammarLoaded), errors.Is(err, ErrLastGrammar):
			status = http.StatusConflict
		case errors.Is(err, ErrWeightRange):
			status = http.StatusBadRequest
		}
		writeJSON(w, status, ErrorResponse{Error: err.Error()})
		return
	}
	resp.Grammars = s.Grammars()
	writeJSON(w, http.StatusOK, resp)
}
