package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"aspen/internal/core"
	"aspen/internal/lang"
	"aspen/internal/mnrl"
	"aspen/internal/store"
	"aspen/internal/telemetry"
)

// Upload fixtures: the (ab)* machine in .pda form (proven depth 1) and
// a left-recursive list grammar (finite LR stack depth).
const uploadPDA = `
[States]
q0 q1
End
[Sigma]
a b
End
[Stack Sigma]
A
End
[Rules]
q0, a, epsilon, A, q1
q1, b, A, epsilon, q0
End
[Start]
q0
End
[Accept]
q0
End
`

const uploadGrammar = `
%name List
%token A
%start S
S : S A | A ;
%lex A a
`

func uploadMNRLSource(t *testing.T) string {
	t.Helper()
	d := &core.DPDA{
		Name: "alt", NumStates: 2, Start: 0,
		Accept: map[int]bool{0: true},
		Trans: []core.DPDATransition{
			{From: 0, Input: 'a', StackTop: core.BottomOfStack, To: 1,
				Op: core.StackOp{Push: 1, HasPush: true}},
			{From: 1, Input: 'b', StackTop: 1, To: 0,
				Op: core.StackOp{Pop: 1}},
		},
	}
	m, err := d.ToHomogeneous()
	if err != nil {
		t.Fatal(err)
	}
	data, err := mnrl.ExportHDPDA(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// postUpload sends an upload op and returns the status with the raw
// response body.
func postUpload(t *testing.T, ts *httptest.Server, name, format, source string) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(adminRequest{Op: "upload", Grammar: name, Format: format, Source: source})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/admin/grammars", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// postRaw is postWhole without response decoding: the raw bytes, for
// byte-identical comparisons across restarts and nodes.
func postRaw(t *testing.T, ts *httptest.Server, grammar string, doc []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/parse/"+grammar, "application/octet-stream", bytes.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// canonicalAnswer strips the wall-clock timing fields from a parse
// response, leaving only the machine-determined payload: two runs of
// the same machine over the same input must agree on every remaining
// byte.
func canonicalAnswer(t *testing.T, raw []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("parse response not JSON: %v: %s", err, raw)
	}
	delete(m, "queueNs")
	delete(m, "parseNs")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestUploadAdmitServeRestart is the upload round-trip: one machine per
// format admitted over HTTP, served, then the store is closed without
// ceremony and reopened — the journal must replay every admission
// identically (same fingerprint, byte-identical answers).
func TestUploadAdmitServeRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(Options{Languages: []*lang.Language{lang.JSON()}, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s1.Handler())

	uploads := []struct {
		name, format, source string
		wantBound            int
	}{
		{"alt-pda", "pda", uploadPDA, 1},
		{"alt-mnrl", "mnrl", uploadMNRLSource(t), 1},
		{"list", "grammar", uploadGrammar, 0 /* any positive */},
	}
	for _, u := range uploads {
		status, raw := postUpload(t, ts, u.name, u.format, u.source)
		if status != http.StatusOK {
			t.Fatalf("upload %s: status %d: %s", u.name, status, raw)
		}
		var ar AdminResponse
		if err := json.Unmarshal(raw, &ar); err != nil {
			t.Fatal(err)
		}
		if !ar.Admitted || ar.StackBound <= 0 {
			t.Fatalf("upload %s: admitted=%v bound=%d", u.name, ar.Admitted, ar.StackBound)
		}
		if u.wantBound != 0 && ar.StackBound != u.wantBound {
			t.Errorf("upload %s: bound %d, want %d", u.name, ar.StackBound, u.wantBound)
		}
	}

	// The admitted machines serve, and report their provenance.
	docs := map[string][][]byte{
		"alt-pda":  {[]byte("abab"), []byte("aab"), []byte("")},
		"alt-mnrl": {[]byte("ab"), []byte("ba")},
		"list":     {[]byte("aaaa"), []byte("")},
	}
	before := map[string][]byte{}
	for name, inputs := range docs {
		for i, doc := range inputs {
			status, raw := postRaw(t, ts, name, doc)
			if status != http.StatusOK {
				t.Fatalf("parse %s[%d]: status %d: %s", name, i, status, raw)
			}
			before[fmt.Sprintf("%s/%d", name, i)] = canonicalAnswer(t, raw)
		}
	}
	fps := map[string]string{}
	for _, gi := range s1.Grammars() {
		fps[gi.Name] = gi.Fingerprint
		if gi.Name != "JSON" && (gi.Format == "" || gi.StackBound <= 0) {
			t.Errorf("grammar %s: format %q stackBound %d not surfaced", gi.Name, gi.Format, gi.StackBound)
		}
	}
	// Per-format admission counters moved.
	snap := s1.Registry().Snapshot()
	for _, format := range []string{"pda", "mnrl", "grammar"} {
		k := telemetry.LabeledName("admit_admitted_total", "format", format)
		if snap.Counters[k] != 1 {
			t.Errorf("%s = %d, want 1", k, snap.Counters[k])
		}
	}

	// Unceremonious shutdown: the HTTP listener dies and the store is
	// reopened from disk. Every append was fsync'd at the commit point,
	// so the journal state is exactly what a kill -9 would leave.
	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	s2, err := New(Options{Languages: []*lang.Language{lang.JSON()}, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	for _, gi := range s2.Grammars() {
		if fps[gi.Name] == "" {
			t.Errorf("grammar %s appeared from nowhere after restart", gi.Name)
			continue
		}
		if gi.Fingerprint != fps[gi.Name] {
			t.Errorf("grammar %s: fingerprint %s after restart, was %s", gi.Name, gi.Fingerprint, fps[gi.Name])
		}
	}
	if len(s2.Grammars()) != len(fps) {
		t.Fatalf("membership %v after restart, want %d tenants", grammarNames(s2.Grammars()), len(fps))
	}
	for name, inputs := range docs {
		for i, doc := range inputs {
			status, raw := postRaw(t, ts2, name, doc)
			if status != http.StatusOK {
				t.Fatalf("parse %s[%d] after restart: status %d", name, i, status)
			}
			if got := canonicalAnswer(t, raw); !bytes.Equal(got, before[fmt.Sprintf("%s/%d", name, i)]) {
				t.Errorf("parse %s[%d]: answer changed across restart:\n before: %s\n after:  %s",
					name, i, before[fmt.Sprintf("%s/%d", name, i)], got)
			}
		}
	}
}

// TestUploadRejectionDiagnostics pins the hostile-upload contract: each
// rejected upload answers 422 with machine-readable diagnostics naming
// the check that fired, nothing is journaled or loaded, the rejection
// counters move, and the server keeps serving throughout.
func TestUploadRejectionDiagnostics(t *testing.T) {
	s, ts := newTestServer(t, Options{Languages: []*lang.Language{lang.JSON()}})

	unbounded := `
[States]
q0 q1
End
[Sigma]
a b
End
[Stack Sigma]
A
End
[Rules]
q0, a, epsilon, A, q0
q0, b, A, epsilon, q1
q1, b, A, epsilon, q1
End
[Start]
q0
End
[Accept]
q1
End
`
	cases := []struct {
		name, format, source, check string
	}{
		{"unbounded", "pda", unbounded, "depth"},
		{"torn", "pda", "[States]\nq0\n", "parse"},
		{"garbage", "mnrl", `{"nodes": [`, "parse"},
		{"ambiguous", "grammar", "%name A\n%token A\n%start S\nS : A | B ;\nB : A ;\n%lex A a\n", "determinism"},
	}
	for _, c := range cases {
		status, raw := postUpload(t, ts, c.name, c.format, c.source)
		if status != http.StatusUnprocessableEntity {
			t.Fatalf("hostile %s: status %d, want 422: %s", c.name, status, raw)
		}
		var rr RejectionResponse
		if err := json.Unmarshal(raw, &rr); err != nil {
			t.Fatalf("hostile %s: body not machine-readable: %v: %s", c.name, err, raw)
		}
		if rr.Admitted || len(rr.Diagnostics) == 0 {
			t.Fatalf("hostile %s: admitted=%v diagnostics=%d", c.name, rr.Admitted, len(rr.Diagnostics))
		}
		if rr.Diagnostics[0].Check != c.check {
			t.Errorf("hostile %s: rejected by %q, want %q (%s)",
				c.name, rr.Diagnostics[0].Check, c.check, rr.Diagnostics[0].Message)
		}
		// Nothing loaded; serving unaffected.
		if resp, pr := postWhole(t, ts, "JSON", []byte(`{"k": [1]}`)); resp.StatusCode != 200 || !pr.Accepted {
			t.Fatalf("JSON parse broken after hostile %s: %d", c.name, resp.StatusCode)
		}
	}
	if got := grammarNames(s.Grammars()); len(got) != 1 || got[0] != "JSON" {
		t.Fatalf("hostile uploads mutated the registry: %v", got)
	}
	snap := s.Registry().Snapshot()
	for check, want := range map[string]int64{"depth": 1, "parse": 2, "determinism": 1} {
		k := telemetry.LabeledName("admit_rejected_total", "check", check)
		if snap.Counters[k] != want {
			t.Errorf("%s = %d, want %d", k, snap.Counters[k], want)
		}
	}
	for _, format := range []string{"pda", "mnrl", "grammar"} {
		k := telemetry.LabeledName("admit_admitted_total", "format", format)
		if snap.Counters[k] != 0 {
			t.Errorf("%s = %d, want 0", k, snap.Counters[k])
		}
	}
}

// TestConcurrentUploadsRaceReload races tenant uploads against SIGHUP
// reloads, hitless swaps, and a continuous parse load. Nothing may
// drop: every parse answers 200, every upload eventually lands, and the
// journal the race leaves behind replays cleanly (the replay path
// enforces strict sequence ordering, so a torn or reordered append
// would fail the reopen).
func TestConcurrentUploadsRaceReload(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := New(Options{Languages: []*lang.Language{lang.JSON()}, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s1.Handler())

	const uploaders = 4
	errs := make(chan error, 64)
	var mut sync.WaitGroup
	for i := 0; i < uploaders; i++ {
		mut.Add(1)
		go func(i int) {
			defer mut.Done()
			name := fmt.Sprintf("tenant-%d", i)
			status, raw := postUpload(t, ts, name, "pda", uploadPDA)
			if status != http.StatusOK {
				errs <- fmt.Errorf("upload %s: status %d: %s", name, status, raw)
			}
		}(i)
	}
	for i := 0; i < 3; i++ {
		mut.Add(1)
		go func() {
			defer mut.Done()
			if _, err := s1.Reload(); err != nil {
				errs <- fmt.Errorf("reload: %w", err)
			}
		}()
		mut.Add(1)
		go func() {
			defer mut.Done()
			if err := s1.SwapGrammar("JSON"); err != nil {
				errs <- fmt.Errorf("swap: %w", err)
			}
		}()
	}
	// Continuous load against the stable tenant: zero drops allowed
	// while the mutations churn.
	stopLoad := make(chan struct{})
	var load sync.WaitGroup
	load.Add(1)
	go func() {
		defer load.Done()
		doc := []byte(`[1, [2, [3]]]`)
		for {
			select {
			case <-stopLoad:
				return
			default:
			}
			status, _ := postRaw(t, ts, "JSON", doc)
			if status != http.StatusOK {
				errs <- fmt.Errorf("JSON parse dropped during race: status %d", status)
				return
			}
		}
	}()
	mut.Wait()
	close(stopLoad)
	load.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Converged: JSON plus every tenant.
	got := grammarNames(s1.Grammars())
	if len(got) != 1+uploaders {
		t.Fatalf("registry did not converge: %v", got)
	}
	// All uploaded tenants serve.
	for i := 0; i < uploaders; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		if status, raw := postRaw(t, ts, name, []byte("abab")); status != http.StatusOK {
			t.Errorf("tenant %s does not serve after race: %d %s", name, status, raw)
		}
	}

	// The journal the race wrote replays cleanly and strictly in order.
	ts.Close()
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatalf("journal left by the race does not replay: %v", err)
	}
	defer st2.Close()
	seq := uint64(0)
	for _, r := range st2.Replay.Records {
		if r.Seq != seq+1 {
			t.Fatalf("journal sequence gap: %d after %d", r.Seq, seq)
		}
		seq = r.Seq
	}
	s2, err := New(Options{Languages: []*lang.Language{lang.JSON()}, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	if got := grammarNames(s2.Grammars()); len(got) != 1+uploaders {
		t.Fatalf("replayed registry %v, want %d tenants", got, 1+uploaders)
	}
}
