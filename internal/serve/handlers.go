package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"strconv"
	"time"

	"aspen/internal/core"
	"aspen/internal/telemetry"
)

// ParseResponse is the body of a completed parse request. Rejection is
// an answer, not a failure: an input outside the grammar's language
// still gets 200 with accepted=false (and Error when the input could
// not even be tokenized).
type ParseResponse struct {
	Grammar  string `json:"grammar"`
	Accepted bool   `json:"accepted"`
	Error    string `json:"error,omitempty"`
	// Session/Partial identify durable-session chunks (see session.go):
	// Partial acknowledges a persisted checkpoint, with Bytes/Tokens as
	// the durable offsets.
	Session string `json:"session,omitempty"`
	Partial bool   `json:"partial,omitempty"`
	Bytes   int    `json:"bytes"`
	Tokens  int    `json:"tokens"`
	// Cycles is symbol cycles + ε-stalls, the machine's time on the
	// fabric; LexScanCycles is the Cache-Automaton-side work.
	Cycles        int   `json:"cycles"`
	EpsilonStalls int   `json:"epsilonStalls"`
	LexScanCycles int   `json:"lexScanCycles"`
	MaxStackDepth int   `json:"maxStackDepth"`
	Reports       int   `json:"reports"`
	QueueNS       int64 `json:"queueNs"`
	ParseNS       int64 `json:"parseNs"`
}

// ErrorResponse is the body of every non-200 answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthResponse is the /healthz body. A fabric that has lost banks
// reports "degraded" with 200 — shrunken capacity is a state to route
// around, not an outage — while "draining" keeps its 503.
type HealthResponse struct {
	Status   string   `json:"status"` // "ok", "degraded", or "draining"
	Grammars []string `json:"grammars"`
	UptimeMS int64    `json:"uptimeMs"`
	// Fabric health: provisioned vs surviving banks, and the worker
	// slots each grammar still has backing.
	FabricBanks      int            `json:"fabricBanks"`
	LiveBanks        int            `json:"liveBanks"`
	EffectiveWorkers map[string]int `json:"effectiveWorkers"`
	// VerifyMode is the silent-corruption detection mode requests run
	// under ("off" when the chaos layer is disarmed). Redundant modes
	// show their cost in EffectiveWorkers: dmr/tmr replicas occupy real
	// fabric banks.
	VerifyMode string `json:"verifyMode"`
}

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/parse/{grammar}", s.handleParse)
	mux.HandleFunc("GET /v1/grammars", s.handleGrammars)
	mux.HandleFunc("POST /v1/admin/grammars", s.handleAdminGrammars)
	mux.HandleFunc("GET /v1/admin/grammars", s.handleGrammars)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	// Session checkpoint handoff: a fleet router ships sealed session
	// images between nodes through these (see handoff.go).
	mux.HandleFunc("GET /v1/sessions/{grammar}/{id}/checkpoint", s.handleSessionGet)
	mux.HandleFunc("PUT /v1/sessions/{grammar}/{id}/checkpoint", s.handleSessionPut)
	mux.HandleFunc("DELETE /v1/sessions/{grammar}/{id}/checkpoint", s.handleSessionDelete)
	// Flight recorder: the last N completed requests with per-phase
	// latency attribution, joinable to X-Aspen-Trace (see trace.go).
	mux.Handle("GET /v1/debug/requests", s.flight)
	// The PR-1 debug endpoints share this mux: /metrics, /metrics.json,
	// /debug/vars, /debug/pprof/...
	telemetry.Routes(mux, s.reg)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	ts := s.tenants.Load()
	h := HealthResponse{
		Status:           "ok",
		Grammars:         ts.names,
		UptimeMS:         time.Since(s.started).Milliseconds(),
		FabricBanks:      s.fabric.Total(),
		LiveBanks:        s.fabric.Live(),
		EffectiveWorkers: make(map[string]int, len(ts.names)),
		VerifyMode:       verifyModeOf(s.opts.Chaos).String(),
	}
	for _, name := range ts.names {
		h.EffectiveWorkers[name] = ts.byName[name].effectiveWorkers()
	}
	status := http.StatusOK
	if h.LiveBanks < h.FabricBanks {
		h.Status = "degraded"
	}
	if s.draining.Load() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// ReadyResponse is the /readyz body. Readiness is routing advice, not
// liveness: 503 here means "place new work elsewhere", while /healthz
// keeps answering 200 for the node's own sake.
type ReadyResponse struct {
	Ready bool `json:"ready"`
	// Reason explains a false Ready: "draining", "retiring", or
	// "unready" (SetReady(false), e.g. SIGTERM received).
	Reason string `json:"reason,omitempty"`
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.Ready() {
		writeJSON(w, http.StatusOK, ReadyResponse{Ready: true})
		return
	}
	reason := "unready"
	switch {
	case s.draining.Load():
		reason = "draining"
	case s.retiring.Load() > 0:
		reason = "retiring"
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, ReadyResponse{Reason: reason})
}

func (s *Server) handleGrammars(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Grammars())
}

func (s *Server) handleParse(w http.ResponseWriter, r *http.Request) {
	// The span opens before admission (so denials carry X-Aspen-Trace
	// too) and records on every exit path.
	sp := s.beginSpan(w, r)
	defer s.recordSpan(&sp)
	sp.grammar = r.PathValue("grammar")
	g, status, denial := s.admitRequest(sp.grammar)
	if g == nil {
		if denial.retryAfter != "" {
			w.Header().Set("Retry-After", denial.retryAfter)
		}
		s.writeErr(w, &sp, denial.entry, status, outcomeDenied, denial.msg)
		return
	}
	sp.g = g
	defer g.release()
	defer s.inflight.Done()
	defer g.inflight.Done()
	s.m.requests.Inc()
	g.m.requests.Inc()
	s.m.inflight.Add(1)
	defer s.m.inflight.Add(-1)

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()

	// Overload control (overload.go), before any queuing: a request the
	// cost model says cannot finish inside its deadline — or whose
	// tenant the brownout ladder has shed — answers 429 now instead of
	// burning an execution context to fail later.
	remaining := s.opts.RequestTimeout
	if d, ok := r.Context().Deadline(); ok {
		if until := time.Until(d); until < remaining {
			remaining = until
		}
	}
	if reason := s.overloadCheck(g, r.ContentLength, remaining); reason != "" {
		s.m.shedTotal[reason].Inc()
		w.Header().Set("Retry-After", s.retryAfter(g))
		s.writeErr(w, &sp, g, http.StatusTooManyRequests, outcomeShed,
			"request shed ("+reason+") for grammar "+g.name)
		return
	}

	start := time.Now()
	// Two-stage scheduling: a weighted-fair execution token (the global
	// AIMD-limited pool, arbitrated across tenants by machine cost) and
	// then this grammar's bank-backed worker slot. Both waits are queue
	// time.
	if err := s.sched.acquire(ctx, g.flow); err != nil {
		s.failCtx(w, &sp, g, err)
		return
	}
	defer s.sched.release()
	if err := g.acquireSlot(ctx); err != nil {
		s.failCtx(w, &sp, g, err)
		return
	}
	queueNS := time.Since(start).Nanoseconds()
	sp.add(phaseQueue, time.Duration(queueNS))
	// The parse loop checks ctx between reads, but a stalled client
	// leaves Read blocked where no check runs — arm the connection
	// deadline so the read itself is interrupted (best effort: recorders
	// and exotic transports may not support it).
	_ = http.NewResponseController(w).SetReadDeadline(start.Add(s.opts.RequestTimeout))
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	// Durable sessions branch off here: same admission, queueing, and
	// slot discipline, but the parser state persists across requests
	// (and restarts) through the checkpoint store.
	if r.URL.RawQuery != "" {
		if q := r.URL.Query(); q.Get("session") != "" {
			final := q.Get("final") == "1" || q.Get("final") == "true"
			s.serveSession(w, ctx, g, body, q.Get("session"), final, start, queueNS, &sp)
			g.releaseSlot()
			return
		}
	}
	out, retries, inputErr, sysErr := g.parseGuarded(ctx, body, &sp)
	g.releaseSlot()
	sp.retries = int32(retries)
	sp.bytes = int64(out.Bytes)
	parseNS := time.Since(start).Nanoseconds() - queueNS

	// Feed the control loops: completed parses (and deadline blowouts,
	// which are by definition bad samples) drive the AIMD limit and the
	// tenant's ns/byte predictor. Other system errors say nothing about
	// parse latency and are excluded.
	if sysErr == nil {
		s.observeParse(g, parseNS, out.Bytes)
	} else if errors.Is(sysErr, context.DeadlineExceeded) {
		s.observeParse(g, parseNS, 0)
	}

	if sysErr != nil {
		s.writeSysErr(w, &sp, g, sysErr)
		return
	}

	// A stack-depth overflow is the client's document exceeding the
	// provisioned nesting budget — a well-defined rejection (422), not a
	// machine fault: it must not count as an error, trip the breaker, or
	// trigger replay (it is deterministic; replaying reproduces it).
	if errors.Is(inputErr, core.ErrStackOverflow) {
		g.m.rejectedDepth.Inc()
		s.writeErr(w, &sp, g, http.StatusUnprocessableEntity, outcomeDepth,
			"input exceeds the provisioned stack depth for grammar "+g.name+": "+inputErr.Error())
		return
	}

	resp := ParseResponse{
		Grammar:       g.name,
		Accepted:      out.Accepted,
		Bytes:         out.Bytes,
		Tokens:        out.Tokens,
		Cycles:        out.Result.Consumed + out.Result.EpsilonStalls,
		EpsilonStalls: out.Result.EpsilonStalls,
		LexScanCycles: out.LexStats.ScanCycles,
		MaxStackDepth: out.Result.MaxStackDepth,
		Reports:       out.Result.ReportCount,
		QueueNS:       queueNS,
		ParseNS:       parseNS,
	}
	switch {
	case inputErr != nil:
		resp.Error = inputErr.Error()
		sp.outcome = outcomeInputErr
		g.m.errors.Inc()
	case out.Accepted:
		g.m.accepted.Inc()
	default:
		sp.outcome = outcomeRejected
		g.m.rejected.Inc()
	}
	g.m.bytes.Add(int64(out.Bytes))
	g.m.tokens.Add(int64(out.Tokens))
	total := time.Since(start).Nanoseconds()
	s.m.requestNS.ObserveInt(total)
	g.m.requestNS.ObserveInt(total)
	s.sampleTrace(g, &resp, total)
	t0 := time.Now()
	writeJSON(w, http.StatusOK, resp)
	sp.addSince(phaseRespond, t0)
}

// admitDenial carries a rejected admission's response pieces. entry is
// the grammar the denial is attributable to (nil when the name never
// resolved).
type admitDenial struct {
	msg        string
	retryAfter string
	entry      *grammarEntry
}

// admitRequest is the serialized admission decision: snapshot lookup,
// drain check, backpressure, and in-flight registration happen inside
// one drainMu read-section. The lock is what makes drain and entry
// retirement sound: every in-flight registration happens-before any
// Wait on the corresponding wait group (Drain and retireEntry barrier
// on drainMu's write side), so a request can never slip past a
// completed drain, and a snapshot entry can never gain a request after
// its retirement barrier. On success the caller owns one admission
// ticket and one registration on both s.inflight and g.inflight.
func (s *Server) admitRequest(name string) (*grammarEntry, int, admitDenial) {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	g := s.tenants.Load().byName[name]
	if g == nil {
		return nil, http.StatusNotFound, admitDenial{msg: "unknown grammar " + strconv.Quote(name)}
	}
	if s.draining.Load() {
		s.m.drainDeny.Inc()
		// Drain 503s carry Retry-After: a client (or fleet router) that
		// raced the readiness flip should retry elsewhere promptly, not
		// treat the denial as terminal.
		return nil, http.StatusServiceUnavailable, admitDenial{msg: "server is draining", retryAfter: "1"}
	}
	// Backpressure: a full waiting room answers immediately instead of
	// queueing without bound.
	if err := g.admit(); err != nil {
		s.m.throttled.Inc()
		s.m.shedTotal[shedQueue].Inc()
		return nil, http.StatusTooManyRequests, admitDenial{
			msg:        "admission queue full for grammar " + g.name,
			retryAfter: s.retryAfter(g),
			entry:      g,
		}
	}
	s.inflight.Add(1)
	g.inflight.Add(1)
	return g, http.StatusOK, admitDenial{}
}

// writeErr answers a non-2xx response, stamping the span's disposition
// and attributing the error to the serve_errors_total{code=...} series
// (g may be nil when routing never resolved a tenant).
func (s *Server) writeErr(w http.ResponseWriter, sp *span, g *grammarEntry, status int, outcome, msg string) {
	sp.status = status
	sp.outcome = outcome
	s.countError(g, status)
	t0 := sp.now()
	writeJSON(w, status, ErrorResponse{Error: msg})
	sp.addSince(phaseRespond, t0)
}

// writeSysErr maps a transport/recovery failure (no parse outcome
// exists) to its status: 413 oversized body, 504/cancel for deadlines,
// 503 for breaker and recovery exhaustion, 400 otherwise. Shared by the
// one-shot and durable-session request paths.
func (s *Server) writeSysErr(w http.ResponseWriter, sp *span, g *grammarEntry, sysErr error) {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(sysErr, &tooBig):
		s.writeErr(w, sp, g, http.StatusRequestEntityTooLarge, outcomeError,
			"request body exceeds "+strconv.FormatInt(tooBig.Limit, 10)+" bytes")
	case errors.Is(sysErr, context.DeadlineExceeded), errors.Is(sysErr, context.Canceled):
		s.failCtx(w, sp, g, sysErr)
	case errors.Is(sysErr, os.ErrDeadlineExceeded):
		// The connection read deadline fired mid-body.
		s.failCtx(w, sp, g, context.DeadlineExceeded)
	case errors.Is(sysErr, errBreakerOpen):
		w.Header().Set("Retry-After", clampRetrySecs(int64(g.chaos.BreakerCooldown/time.Second)))
		s.writeErr(w, sp, g, http.StatusServiceUnavailable, outcomeDenied,
			"grammar "+g.name+" is shedding load (circuit breaker open)")
	case errors.Is(sysErr, errRecoveryExhausted), errors.Is(sysErr, errCheckpointCorrupt):
		g.m.errors.Inc()
		s.writeErr(w, sp, g, http.StatusServiceUnavailable, outcomeError, sysErr.Error())
	default:
		g.m.errors.Inc()
		s.writeErr(w, sp, g, http.StatusBadRequest, outcomeError, sysErr.Error())
	}
}

// failCtx answers a deadline/cancellation failure: 504 when the server
// deadline expired, and a best-effort 499-style close (the client is
// gone) otherwise.
func (s *Server) failCtx(w http.ResponseWriter, sp *span, g *grammarEntry, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.m.timeouts.Inc()
		g.m.errors.Inc()
		s.writeErr(w, sp, g, http.StatusGatewayTimeout, outcomeTimeout, "request deadline exceeded")
		return
	}
	s.m.canceled.Inc()
	// Client cancellation: nobody is listening; record the span (499 by
	// convention: the client closed the request) and return.
	sp.status = 499
	sp.outcome = outcomeCanceled
}

// Retry-After clamp: never below 1 (a cold start with no latency
// history — or a sub-second estimate truncating to 0 — must not tell
// clients to retry immediately) and never above maxRetryAfterSecs (a
// latency spike must not push clients away for minutes).
const maxRetryAfterSecs = 60

func clampRetrySecs(secs int64) string {
	if secs < 1 {
		secs = 1
	}
	if secs > maxRetryAfterSecs {
		secs = maxRetryAfterSecs
	}
	return strconv.FormatInt(secs, 10)
}

// retryAfter derives the 429 Retry-After hint from the mean observed
// request latency of the grammar times the waiting room it would have
// to drain, clamped to [1, maxRetryAfterSecs].
func (s *Server) retryAfter(g *grammarEntry) string {
	secs := int64(1)
	if n := g.m.requestNS.Count(); n > 0 {
		meanNS := g.m.requestNS.Sum() / float64(n)
		backlog := float64(len(g.queue)) / float64(g.workers)
		if est := int64(meanNS * backlog / 1e9); est > secs {
			secs = est
		}
	}
	return clampRetrySecs(secs)
}

// sampleTrace emits every Nth completed request to the trace sink.
func (s *Server) sampleTrace(g *grammarEntry, resp *ParseResponse, totalNS int64) {
	if s.opts.Trace == nil {
		return
	}
	every := int64(s.opts.TraceSample)
	if every < 1 {
		every = 1
	}
	if s.traceSeq.Add(1)%every != 0 {
		return
	}
	s.opts.Trace.Emit(map[string]any{
		"event":    "serve.request",
		"grammar":  g.name,
		"accepted": resp.Accepted,
		"bytes":    resp.Bytes,
		"tokens":   resp.Tokens,
		"cycles":   resp.Cycles,
		"queueNs":  resp.QueueNS,
		"totalNs":  totalNS,
		"error":    resp.Error,
	})
}
