package subtree

import (
	"runtime"
	"sync"
)

// Parallel support counting: the host-side analogue of ASPEN's
// bank-level parallelism (each (pattern, tree) check is independent).
// Used by tooling that wants multi-core checking; the paper's CPU
// baseline remains single-threaded.

// CountSupportParallel counts the trees of db including pattern using
// the given number of workers (0 = GOMAXPROCS). The result is identical
// to CountSupport.
func CountSupportParallel(pattern *Tree, db []*Tree, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(db) < 2*workers {
		return CountSupport(pattern, db)
	}
	// Build the lazy children caches serially: they are not safe for
	// concurrent construction (reads after this are immutable).
	pattern.buildKids()
	for _, t := range db {
		t.buildKids()
	}
	var wg sync.WaitGroup
	counts := make([]int, workers)
	chunk := (len(db) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(db) {
			hi = len(db)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			n := 0
			for _, t := range db[lo:hi] {
				if IncludesFirstFit(pattern, t) {
					n++
				}
			}
			counts[w] = n
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, n := range counts {
		total += n
	}
	return total
}
