package subtree

import (
	"math/rand"
	"testing"
)

// mk builds a tree from a parent vector and labels.
func mk(t *testing.T, labels []Label, parents []int32) *Tree {
	t.Helper()
	tr := &Tree{Labels: labels, Parent: parents}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	// A(B(D), C)
	tr := mk(t, []Label{0, 1, 3, 2}, []int32{-1, 0, 1, 0})
	enc := tr.Encode()
	want := []Label{0, 1, 3, Up, Up, 2, Up, Up}
	if len(enc) != len(want) {
		t.Fatalf("enc = %v", enc)
	}
	for i := range want {
		if enc[i] != want[i] {
			t.Fatalf("enc = %v, want %v", enc, want)
		}
	}
	back, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != tr.Key() {
		t.Errorf("round trip key mismatch: %q vs %q", back.Key(), tr.Key())
	}
	if tr.Depth() != 3 || back.Depth() != 3 {
		t.Errorf("depth = %d/%d", tr.Depth(), back.Depth())
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]Label{
		{Up},
		{1, Up, 2, Up},
		{1, 2, Up},
		{},
	}
	for _, seq := range cases {
		if _, err := Decode(seq); err == nil {
			t.Errorf("Decode(%v) should fail", seq)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []*Tree{
		{Labels: []Label{1}, Parent: []int32{0}},
		{Labels: []Label{1, 2}, Parent: []int32{-1}},
		{Labels: []Label{1, 2}, Parent: []int32{-1, 1}},
		{Labels: []Label{-5}, Parent: []int32{-1}},
		{},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestRightmostExtension(t *testing.T) {
	tr := mk(t, []Label{0, 1, 2}, []int32{-1, 0, 0}) // A(B, C)
	path := tr.RightmostPath()
	if len(path) != 2 || path[0] != 0 || path[1] != 2 {
		t.Fatalf("rightmost path = %v", path)
	}
	ext := tr.ExtendRightmost(2, 7) // attach under C
	if err := ext.Validate(); err != nil {
		t.Fatal(err)
	}
	if ext.NumNodes() != 4 || ext.Parent[3] != 2 {
		t.Errorf("ext = %+v", ext)
	}
}

func TestInclusionBasics(t *testing.T) {
	// T = A(B(C), B(D), E)
	tree := mk(t, []Label{0, 1, 2, 1, 3, 4}, []int32{-1, 0, 1, 0, 3, 0})
	cases := []struct {
		labels  []Label
		parents []int32
		induced bool
	}{
		{[]Label{0}, []int32{-1}, true},                   // A
		{[]Label{0, 1}, []int32{-1, 0}, true},             // A(B)
		{[]Label{0, 1, 3}, []int32{-1, 0, 1}, true},       // A(B(D))
		{[]Label{0, 1, 1}, []int32{-1, 0, 0}, true},       // A(B,B)
		{[]Label{0, 4}, []int32{-1, 0}, true},             // A(E)
		{[]Label{0, 2}, []int32{-1, 0}, false},            // A(C) parent-child only via B
		{[]Label{1, 2}, []int32{-1, 0}, true},             // B(C)
		{[]Label{0, 3, 1}, []int32{-1, 0, 0}, false},      // A(D,B): order violated and D not a child
		{[]Label{5}, []int32{-1}, false},                  // missing label
		{[]Label{0, 4, 1}, []int32{-1, 0, 0}, false},      // A(E,B): order violated
		{[]Label{0, 1, 1, 4}, []int32{-1, 0, 0, 0}, true}, // A(B,B,E)
	}
	for _, tc := range cases {
		p := mk(t, tc.labels, tc.parents)
		if got := IncludesInduced(p, tree); got != tc.induced {
			t.Errorf("induced(%v) = %v, want %v", tc.labels, got, tc.induced)
		}
		// First-fit is sound: success implies induced inclusion.
		if IncludesFirstFit(p, tree) && !tc.induced {
			t.Errorf("first-fit(%v) succeeded where exact says no", tc.labels)
		}
	}
}

func TestEmbeddedVsInduced(t *testing.T) {
	// T = A(B(C)): A(C) is embedded but not induced.
	tree := mk(t, []Label{0, 1, 2}, []int32{-1, 0, 1})
	p := mk(t, []Label{0, 2}, []int32{-1, 0})
	if IncludesInduced(p, tree) {
		t.Error("A(C) should not be induced in A(B(C))")
	}
	if !IncludesEmbedded(p, tree) {
		t.Error("A(C) should be embedded in A(B(C))")
	}
	// Order preservation: T = A(B, C); pattern A(C, B) embeds neither
	// way.
	tree2 := mk(t, []Label{0, 1, 2}, []int32{-1, 0, 0})
	p2 := mk(t, []Label{0, 2, 1}, []int32{-1, 0, 0})
	if IncludesEmbedded(p2, tree2) {
		t.Error("embedded inclusion must preserve order")
	}
}

// randomTree builds a random tree with n nodes over the label set.
func randomTree(r *rand.Rand, n, labels int) *Tree {
	t := &Tree{Labels: []Label{Label(r.Intn(labels))}, Parent: []int32{-1}}
	for i := 1; i < n; i++ {
		t.Labels = append(t.Labels, Label(r.Intn(labels)))
		// preorder-valid parent: any previous node on the rightmost
		// spine of the partially built tree; picking any previous node
		// i-1..0 keeps Parent[i] < i which is all Validate needs, but to
		// keep real preorder shape, attach to a node on the current
		// rightmost path.
		path := t.RightmostPath()
		t.Parent = append(t.Parent, path[r.Intn(len(path))])
		t.kids = nil
	}
	return t
}

// Property: the inclusion hDPDA agrees exactly with matchFirstFitSeq on
// random pattern/tree pairs, and first-fit success always implies exact
// induced inclusion.
func TestInclusionMachineMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 300; trial++ {
		pat := randomTree(r, 1+r.Intn(5), 4)
		tree := randomTree(r, 1+r.Intn(14), 4)
		im, err := NewInclusionMachine(pat)
		if err != nil {
			t.Fatal(err)
		}
		got, err := im.Includes(tree)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := IncludesFirstFit(pat, tree)
		if got != want {
			t.Fatalf("trial %d: dpda=%v firstfit=%v\npattern %v\ntree %v",
				trial, got, want, pat.Encode(), tree.Encode())
		}
		if got && !IncludesInduced(pat, tree) {
			t.Fatalf("trial %d: first-fit accepted a non-included pattern", trial)
		}
	}
}

// Property: when every pattern node's children have distinct labels and
// the tree's sibling labels are distinct, first-fit equals exact.
func TestFirstFitExactOnDistinctSiblings(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	distinctSiblings := func(tr *Tree) bool {
		for i := int32(0); i < int32(tr.NumNodes()); i++ {
			seen := map[Label]bool{}
			for _, c := range tr.Children(i) {
				if seen[tr.Labels[c]] {
					return false
				}
				seen[tr.Labels[c]] = true
			}
		}
		return true
	}
	tested := 0
	for trial := 0; trial < 2000 && tested < 300; trial++ {
		pat := randomTree(r, 1+r.Intn(4), 6)
		tree := randomTree(r, 1+r.Intn(10), 6)
		if !distinctSiblings(pat) || !distinctSiblings(tree) {
			continue
		}
		tested++
		if IncludesFirstFit(pat, tree) != IncludesInduced(pat, tree) {
			t.Fatalf("divergence on distinct-sibling trees:\npattern %v\ntree %v",
				pat.Encode(), tree.Encode())
		}
	}
	if tested < 100 {
		t.Fatalf("only %d qualifying cases generated", tested)
	}
}

func TestInclusionMachineShape(t *testing.T) {
	pat := mk(t, []Label{0, 1, 2}, []int32{-1, 0, 0})
	im, err := NewInclusionMachine(pat)
	if err != nil {
		t.Fatal(err)
	}
	if im.Machine.EpsilonStates() != 1 { // only the synthetic start
		t.Errorf("inclusion machine has %d ε-states, want 1 (start only)", im.Machine.EpsilonStates())
	}
	if im.AlphabetSize() != 5 { // 3 labels + Up + other
		t.Errorf("alphabet = %d", im.AlphabetSize())
	}
	if im.StackAlphabetSize() != 5 {
		t.Errorf("stack alphabet = %d", im.StackAlphabetSize())
	}
	// Runtime is linear with zero stalls.
	tree := randomTree(rand.New(rand.NewSource(5)), 40, 3)
	in := im.EncodeInput(tree.EncodeSubtree(0))
	res, err := im.Machine.Run(in, im.execOptsForTest())
	if err != nil {
		t.Fatal(err)
	}
	if res.EpsilonStalls != 0 {
		t.Errorf("stalls = %d, want 0", res.EpsilonStalls)
	}
}

func TestAnchors(t *testing.T) {
	tree := mk(t, []Label{0, 1, 0, 1}, []int32{-1, 0, 0, 2})
	im, err := NewInclusionMachine(Leaf(0))
	if err != nil {
		t.Fatal(err)
	}
	a := im.Anchors(tree)
	if len(a) != 2 || a[0] != 0 || a[1] != 2 {
		t.Errorf("anchors = %v", a)
	}
}
