package subtree

import (
	"math/rand"
	"testing"
)

func smallDB(r *rand.Rand, n int) []*Tree {
	db := make([]*Tree, n)
	for i := range db {
		db[i] = randomTree(r, 2+r.Intn(8), 5)
	}
	return db
}

func TestMineBasics(t *testing.T) {
	// Database where A(B) appears in 3 of 4 trees.
	db := []*Tree{
		{Labels: []Label{0, 1}, Parent: []int32{-1, 0}},
		{Labels: []Label{0, 1, 2}, Parent: []int32{-1, 0, 0}},
		{Labels: []Label{2, 0, 1}, Parent: []int32{-1, 0, 1}},
		{Labels: []Label{3}, Parent: []int32{-1}},
	}
	pats, wl, err := Mine(db, MineConfig{MinSupport: 3})
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]int{}
	for _, p := range pats {
		found[p.Tree.Key()] = p.Support
	}
	ab := (&Tree{Labels: []Label{0, 1}, Parent: []int32{-1, 0}}).Key()
	if found[ab] != 3 {
		t.Errorf("support(A(B)) = %d, want 3; found %v", found[ab], found)
	}
	if wl.Totals().TreeChecks == 0 || len(wl.Iterations) < 2 {
		t.Errorf("workload empty: %+v", wl)
	}
}

// Property: every reported pattern's support matches brute-force
// recounting, and no frequent pattern of size ≤ 3 is missed.
func TestMineMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	db := smallDB(r, 30)
	minSup := 8
	pats, _, err := Mine(db, MineConfig{MinSupport: minSup, MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	reported := map[string]int{}
	for _, p := range pats {
		reported[p.Tree.Key()] = p.Support
	}
	// Check reported supports.
	for _, p := range pats {
		if got := CountSupport(p.Tree, db); got != p.Support {
			t.Errorf("pattern %v: support %d, recount %d", p.Tree.Encode(), p.Support, got)
		}
		if p.Support < minSup {
			t.Errorf("pattern %v below threshold", p.Tree.Encode())
		}
	}
	// Exhaustive 2-node pattern check (antimonotonicity of first-fit
	// support holds for the rightmost-extension lattice on these sizes).
	for a := Label(0); a < 5; a++ {
		for b := Label(0); b < 5; b++ {
			p := &Tree{Labels: []Label{a, b}, Parent: []int32{-1, 0}}
			sup := CountSupport(p, db)
			if sup >= minSup {
				if _, ok := reported[p.Key()]; !ok {
					t.Errorf("missed frequent pattern %v (support %d)", p.Encode(), sup)
				}
			}
		}
	}
}

func TestMineConfigErrors(t *testing.T) {
	if _, _, err := Mine(nil, MineConfig{}); err == nil {
		t.Error("MinSupport 0 should error")
	}
	r := rand.New(rand.NewSource(1))
	db := smallDB(r, 10)
	if _, _, err := Mine(db, MineConfig{MinSupport: 1, MaxNodes: 3, MaxPatterns: 2}); err == nil {
		t.Error("pattern explosion should error")
	}
}

func TestGPUSimDivergence(t *testing.T) {
	g := DefaultGPUMiner()
	pat := []Label{0, Up}
	// Even warp: 32 identical lanes.
	even := make([]LaneRun, 32)
	for i := range even {
		even[i] = LaneRun{Pattern: pat, Seqs: [][]Label{{0, 1, Up, 1, Up, Up}}}
	}
	evenCycles := g.SimulateChecks(even)
	// Uneven warp: one long lane, 31 short.
	uneven := make([]LaneRun, 32)
	long := []Label{0}
	for i := 0; i < 40; i++ {
		long = append(long, 1)
	}
	for i := 0; i < 40; i++ {
		long = append(long, Up)
	}
	long = append(long, Up)
	for i := range uneven {
		uneven[i] = LaneRun{Pattern: pat, Seqs: [][]Label{{0, Up}}}
	}
	uneven[0] = LaneRun{Pattern: pat, Seqs: [][]Label{long}}
	unevenCycles := g.SimulateChecks(uneven)
	if unevenCycles <= evenCycles {
		t.Errorf("uneven warp %d cycles !> even %d (slowest-lane effect missing)", unevenCycles, evenCycles)
	}
	// Per-lane useful work is far lower in the uneven warp, yet it costs
	// more — the Fig. 9 TREEBANK pathology.
}

func TestGPUSimDistinctOpsSerialize(t *testing.T) {
	g := DefaultGPUMiner()
	pat := []Label{0, Up}
	// All lanes doing identical ops each step.
	uniform := make([]LaneRun, 32)
	for i := range uniform {
		uniform[i] = LaneRun{Pattern: pat, Seqs: [][]Label{{0, Up}}}
	}
	// Divergent: half match, half skip at each step.
	divergent := make([]LaneRun, 32)
	for i := range divergent {
		if i%2 == 0 {
			divergent[i] = LaneRun{Pattern: pat, Seqs: [][]Label{{0, Up}}}
		} else {
			divergent[i] = LaneRun{Pattern: pat, Seqs: [][]Label{{3, Up}}}
		}
	}
	if u, d := g.SimulateChecks(uniform), g.SimulateChecks(divergent); d <= u {
		t.Errorf("divergent warp %d !> uniform %d", d, u)
	}
}

func TestASPENMinerModel(t *testing.T) {
	a := DefaultASPENMiner()
	wl := &Workload{Iterations: []IterationLoad{
		{Level: 2, Candidates: 100, MachineStates: 5000, AnchorRuns: 10000, AnchorSymbols: 1_000_000, TreeChecks: 5000},
	}}
	tm := a.Model(wl, 1<<20)
	if tm.KernelNS <= 0 || tm.TotalNS() < tm.KernelNS {
		t.Errorf("timing = %+v", tm)
	}
	// Kernel parallelism: 1M symbols over 256 banks at 850 MHz ≈ 4.6 µs.
	if tm.KernelNS < 3000 || tm.KernelNS > 8000 {
		t.Errorf("KernelNS = %.0f, want ≈4600", tm.KernelNS)
	}
}
