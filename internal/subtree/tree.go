// Package subtree implements the paper's second application (§II-D,
// §VI-C): frequent subtree mining, whose core kernel is subtree
// inclusion checking. Trees are rooted, labeled and ordered, serialized
// in Zaki's preorder string encoding (label on descent, −1 on
// backtrack). Inclusion candidates compile to small stall-free hDPDAs —
// one per candidate, run in parallel across ASPEN banks — while CPU and
// GPU baselines execute the same matching relation so support counts
// agree across engines.
package subtree

import (
	"fmt"
	"strings"
)

// Label is a node label. Datasets may use large vocabularies; inclusion
// automata project labels onto a per-candidate alphabet.
type Label = int32

// Up is the backtrack marker in the preorder string encoding.
const Up Label = -1

// Tree is a rooted, labeled, ordered tree stored in preorder.
type Tree struct {
	// Labels holds node labels in preorder.
	Labels []Label
	// Parent holds each node's parent index (-1 for the root).
	Parent []int32
	// kids caches the children lists (same order as input).
	kids [][]int32
}

// NumNodes returns the node count.
func (t *Tree) NumNodes() int { return len(t.Labels) }

// Children returns node i's children in order.
func (t *Tree) Children(i int32) []int32 {
	t.buildKids()
	return t.kids[i]
}

func (t *Tree) buildKids() {
	if t.kids != nil || len(t.Labels) == 0 {
		return
	}
	t.kids = make([][]int32, len(t.Labels))
	for i := 1; i < len(t.Parent); i++ {
		p := t.Parent[i]
		t.kids[p] = append(t.kids[p], int32(i))
	}
}

// Depth returns the maximum depth (root = 1).
func (t *Tree) Depth() int {
	depth := make([]int, len(t.Labels))
	maxd := 0
	for i := range t.Labels {
		if t.Parent[i] < 0 {
			depth[i] = 1
		} else {
			depth[i] = depth[t.Parent[i]] + 1
		}
		if depth[i] > maxd {
			maxd = depth[i]
		}
	}
	return maxd
}

// Validate checks the preorder parent structure.
func (t *Tree) Validate() error {
	if len(t.Labels) != len(t.Parent) {
		return fmt.Errorf("subtree: labels/parents length mismatch")
	}
	if len(t.Labels) == 0 {
		return fmt.Errorf("subtree: empty tree")
	}
	if t.Parent[0] != -1 {
		return fmt.Errorf("subtree: node 0 must be the root")
	}
	for i := 1; i < len(t.Parent); i++ {
		if t.Parent[i] < 0 || t.Parent[i] >= int32(i) {
			return fmt.Errorf("subtree: node %d has invalid parent %d (preorder requires parent < node)", i, t.Parent[i])
		}
	}
	for i, l := range t.Labels {
		if l < 0 {
			return fmt.Errorf("subtree: node %d has negative label %d", i, l)
		}
	}
	return nil
}

// Encode serializes the tree in Zaki's preorder string encoding: the
// node label on descent, Up on backtrack (including after the root).
func (t *Tree) Encode() []Label {
	t.buildKids()
	out := make([]Label, 0, 2*len(t.Labels))
	var walk func(i int32)
	walk = func(i int32) {
		out = append(out, t.Labels[i])
		for _, c := range t.kids[i] {
			walk(c)
		}
		out = append(out, Up)
	}
	if len(t.Labels) > 0 {
		walk(0)
	}
	return out
}

// Decode rebuilds a tree from the preorder string encoding.
func Decode(seq []Label) (*Tree, error) {
	t := &Tree{}
	var stack []int32
	for i, s := range seq {
		if s == Up {
			if len(stack) == 0 {
				return nil, fmt.Errorf("subtree: unbalanced Up at %d", i)
			}
			stack = stack[:len(stack)-1]
			continue
		}
		if len(stack) == 0 && len(t.Labels) > 0 {
			return nil, fmt.Errorf("subtree: forest encoding at %d (second root)", i)
		}
		parent := int32(-1)
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		t.Labels = append(t.Labels, s)
		t.Parent = append(t.Parent, parent)
		stack = append(stack, int32(len(t.Labels)-1))
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("subtree: %d unclosed nodes", len(stack))
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// EncodeSubtree serializes the subtree rooted at node i.
func (t *Tree) EncodeSubtree(i int32) []Label {
	t.buildKids()
	var out []Label
	var walk func(j int32)
	walk = func(j int32) {
		out = append(out, t.Labels[j])
		for _, c := range t.kids[j] {
			walk(c)
		}
		out = append(out, Up)
	}
	walk(i)
	return out
}

// Key returns a canonical string for deduplication.
func (t *Tree) Key() string {
	var b strings.Builder
	for _, s := range t.Encode() {
		if s == Up {
			b.WriteString("^ ")
		} else {
			fmt.Fprintf(&b, "%d ", s)
		}
	}
	return b.String()
}

// RightmostPath returns node indices from the root to the rightmost
// leaf.
func (t *Tree) RightmostPath() []int32 {
	t.buildKids()
	var path []int32
	i := int32(0)
	for {
		path = append(path, i)
		ks := t.kids[i]
		if len(ks) == 0 {
			return path
		}
		i = ks[len(ks)-1]
	}
}

// ExtendRightmost returns a copy of t with a new leaf labeled l attached
// to node at — at must lie on the rightmost path so the preorder
// property is preserved by appending.
func (t *Tree) ExtendRightmost(at int32, l Label) *Tree {
	nt := &Tree{
		Labels: append(append([]Label(nil), t.Labels...), l),
		Parent: append(append([]int32(nil), t.Parent...), at),
	}
	return nt
}

// Leaf creates a single-node tree.
func Leaf(l Label) *Tree { return &Tree{Labels: []Label{l}, Parent: []int32{-1}} }

// DistinctLabels returns the set of labels used, in first-seen order.
func (t *Tree) DistinctLabels() []Label {
	seen := map[Label]bool{}
	var out []Label
	for _, l := range t.Labels {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}
