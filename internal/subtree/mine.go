package subtree

import (
	"fmt"
	"sort"
	"time"
)

// Frequent subtree mining (paper §VI-C): breadth-first iterative search.
// Each iteration generates (k+1)-node candidates from the frequent
// k-node patterns by rightmost-path extension (Zaki's candidate
// generation) and counts transaction support with the first-fit
// inclusion kernel. The Workload record captures exactly the checking
// work performed, which the ASPEN and GPU execution models consume.

// Pattern is a frequent subtree with its support.
type Pattern struct {
	Tree    *Tree
	Support int
}

// MineConfig bounds the search.
type MineConfig struct {
	// MinSupport is the transaction support threshold (number of trees
	// containing the pattern).
	MinSupport int
	// MaxNodes caps pattern size (0 = unlimited).
	MaxNodes int
	// MaxPatterns aborts runaway searches (0 = 1e6).
	MaxPatterns int
	// CollectRuns, when positive, records up to this many individual
	// anchor runs in the Workload for the GPU execution model.
	CollectRuns int
}

// IterationLoad describes the checking work of one mining iteration.
type IterationLoad struct {
	// Level is the candidate size (nodes).
	Level int
	// Candidates is the number of candidate subtrees checked.
	Candidates int
	// Frequent is how many met the support threshold.
	Frequent int
	// MachineStates is the total hDPDA states across candidate machines
	// (configuration load for ASPEN).
	MachineStates int
	// AnchorRuns is the number of (candidate, anchor) DPDA executions.
	AnchorRuns int64
	// AnchorSymbols is the total input symbols across those runs — the
	// ASPEN kernel's cycle count before parallelization.
	AnchorSymbols int64
	// EarlyAnchorSymbols counts symbols under early-termination
	// semantics (a sequential checker stops a tree's anchors at the
	// first match) — the CPU baseline's useful work.
	EarlyAnchorSymbols int64
	// TreeChecks is the number of (candidate, tree) inclusion queries.
	TreeChecks int64
	// CheckNS is the measured wall-clock time of this iteration's
	// inclusion checking (the CPU baseline's kernel time).
	CheckNS float64
}

// Workload aggregates the mining run for the execution models.
type Workload struct {
	Iterations []IterationLoad
	// MaxStackDepth is the deepest DPDA stack any run needed (Table V
	// "Stack-Size").
	MaxStackDepth int
	// MaxAlphabet is the largest per-candidate automaton alphabet
	// (Table V "Automata Alphabets").
	MaxAlphabet int
	// Runs holds the individual (pattern, anchor) checks when
	// MineConfig.CollectRuns is set, for the GPU SIMT simulation.
	Runs []LaneRun
}

// Totals sums the per-iteration loads.
func (w *Workload) Totals() IterationLoad {
	var t IterationLoad
	for _, it := range w.Iterations {
		t.Candidates += it.Candidates
		t.Frequent += it.Frequent
		t.MachineStates += it.MachineStates
		t.AnchorRuns += it.AnchorRuns
		t.AnchorSymbols += it.AnchorSymbols
		t.EarlyAnchorSymbols += it.EarlyAnchorSymbols
		t.TreeChecks += it.TreeChecks
		t.CheckNS += it.CheckNS
	}
	return t
}

// Mine runs the breadth-first frequent-subtree search over db.
func Mine(db []*Tree, cfg MineConfig) ([]Pattern, *Workload, error) {
	if cfg.MinSupport <= 0 {
		return nil, nil, fmt.Errorf("subtree: MinSupport must be positive")
	}
	maxPatterns := cfg.MaxPatterns
	if maxPatterns == 0 {
		maxPatterns = 1 << 20
	}
	wl := &Workload{}

	// Dataset depth bounds every run's stack need.
	for _, t := range db {
		if d := t.Depth(); d > wl.MaxStackDepth {
			wl.MaxStackDepth = d
		}
	}

	// Level 1: frequent labels.
	labelTids := map[Label][]int{}
	for tid, t := range db {
		seen := map[Label]bool{}
		for _, l := range t.Labels {
			if !seen[l] {
				seen[l] = true
				labelTids[l] = append(labelTids[l], tid)
			}
		}
	}
	var freqLabels []Label
	type entry struct {
		pat  *Tree
		tids []int
	}
	var level []entry
	var result []Pattern
	for l, tids := range labelTids {
		if len(tids) >= cfg.MinSupport {
			freqLabels = append(freqLabels, l)
		}
	}
	sort.Slice(freqLabels, func(i, j int) bool { return freqLabels[i] < freqLabels[j] })
	for _, l := range freqLabels {
		tids := labelTids[l]
		sort.Ints(tids)
		level = append(level, entry{pat: Leaf(l), tids: tids})
		result = append(result, Pattern{Tree: Leaf(l), Support: len(tids)})
	}
	wl.Iterations = append(wl.Iterations, IterationLoad{
		Level: 1, Candidates: len(labelTids), Frequent: len(freqLabels),
	})
	if wl.MaxAlphabet < 3 {
		wl.MaxAlphabet = 3 // 1 label + Up + other
	}

	for size := 2; len(level) > 0 && (cfg.MaxNodes == 0 || size <= cfg.MaxNodes); size++ {
		it := IterationLoad{Level: size}
		var next []entry
		seen := map[string]bool{}
		for _, e := range level {
			path := e.pat.RightmostPath()
			for _, at := range path {
				for _, l := range freqLabels {
					cand := e.pat.ExtendRightmost(at, l)
					key := cand.Key()
					if seen[key] {
						continue
					}
					seen[key] = true
					it.Candidates++

					if a := len(cand.DistinctLabels()) + 2; a > wl.MaxAlphabet {
						wl.MaxAlphabet = a
					}
					// Candidate machine size: states scale with encoded
					// positions (≈4 per position + start).
					it.MachineStates += 4*2*cand.NumNodes() + 1

					ep := cand.Encode()
					rootLabel := cand.Labels[0]
					var tids []int
					checkStart := time.Now()
					for _, tid := range e.tids {
						tree := db[tid]
						it.TreeChecks++
						matched := false
						var laneSeqs [][]Label
						collect := cfg.CollectRuns > 0 && len(wl.Runs) < cfg.CollectRuns
						for i := int32(0); i < int32(tree.NumNodes()); i++ {
							if tree.Labels[i] != rootLabel {
								continue
							}
							seq := tree.EncodeSubtree(i)
							it.AnchorRuns++
							it.AnchorSymbols += int64(len(seq))
							if !matched {
								// A sequential checker stops at the first
								// match; the hardware checks every anchor
								// in parallel regardless.
								it.EarlyAnchorSymbols += int64(len(seq))
								if collect {
									laneSeqs = append(laneSeqs, seq)
								}
								if matchFirstFitSeq(ep, seq) {
									matched = true
								}
							}
						}
						if collect && len(laneSeqs) > 0 {
							// One GPU lane per (candidate, tree), scanning
							// anchors until the first match.
							wl.Runs = append(wl.Runs, LaneRun{Pattern: ep, Seqs: laneSeqs})
						}
						if matched {
							tids = append(tids, tid)
						}
					}
					it.CheckNS += float64(time.Since(checkStart).Nanoseconds())
					if len(tids) >= cfg.MinSupport {
						it.Frequent++
						next = append(next, entry{pat: cand, tids: tids})
						result = append(result, Pattern{Tree: cand, Support: len(tids)})
						if len(result) > maxPatterns {
							return nil, nil, fmt.Errorf("subtree: pattern explosion (> %d); raise MinSupport", maxPatterns)
						}
					}
				}
			}
		}
		wl.Iterations = append(wl.Iterations, it)
		level = next
	}
	return result, wl, nil
}

// CountSupport counts the trees of db including pattern (first-fit), the
// kernel all engines share.
func CountSupport(pattern *Tree, db []*Tree) int {
	n := 0
	for _, t := range db {
		if IncludesFirstFit(pattern, t) {
			n++
		}
	}
	return n
}
