package subtree

// Unordered inclusion — the other axis of the paper's Fig. 3 taxonomy
// (Induced/Embedded × Ordered/Unordered). The mining engines use the
// ordered relations; these exact checkers complete the taxonomy and
// anchor the property tests (ordered inclusion implies unordered
// inclusion).

// IncludesInducedUnordered decides unordered induced inclusion: an
// injective map preserving labels and parent-child edges, with sibling
// order free.
func IncludesInducedUnordered(pattern, tree *Tree) bool {
	pattern.buildKids()
	tree.buildKids()
	memo := map[[2]int32]int8{}
	var can func(p, t int32) bool
	can = func(p, t int32) bool {
		key := [2]int32{p, t}
		if v, ok := memo[key]; ok {
			return v == 1
		}
		ok := false
		if pattern.Labels[p] == tree.Labels[t] {
			ok = matchChildrenUnordered(pattern.kids[p], tree.kids[t], can)
		}
		if ok {
			memo[key] = 1
		} else {
			memo[key] = 0
		}
		return ok
	}
	for t := int32(0); t < int32(tree.NumNodes()); t++ {
		if can(0, t) {
			return true
		}
	}
	return false
}

// matchChildrenUnordered decides whether pattern children pc match
// distinct tree children (any order), each pair satisfying can —
// bipartite matching via augmenting paths (Kuhn's algorithm).
func matchChildrenUnordered(pc, tc []int32, can func(p, t int32) bool) bool {
	if len(pc) == 0 {
		return true
	}
	if len(pc) > len(tc) {
		return false
	}
	// matchTo[j] = index into pc matched to tc[j], or -1.
	matchTo := make([]int, len(tc))
	for j := range matchTo {
		matchTo[j] = -1
	}
	var try func(i int, visited []bool) bool
	try = func(i int, visited []bool) bool {
		for j := range tc {
			if visited[j] || !can(pc[i], tc[j]) {
				continue
			}
			visited[j] = true
			if matchTo[j] < 0 || try(matchTo[j], visited) {
				matchTo[j] = i
				return true
			}
		}
		return false
	}
	for i := range pc {
		visited := make([]bool, len(tc))
		if !try(i, visited) {
			return false
		}
	}
	return true
}

// IncludesEmbeddedUnordered decides unordered embedded inclusion:
// label-preserving, parent→ancestor, injective, sibling order free.
func IncludesEmbeddedUnordered(pattern, tree *Tree) bool {
	pattern.buildKids()
	tree.buildKids()
	n := tree.NumNodes()
	// pre/post numbering for ancestor tests.
	pre := make([]int32, n)
	post := make([]int32, n)
	var cp, cq int32
	var number func(i int32)
	number = func(i int32) {
		pre[i] = cp
		cp++
		for _, c := range tree.kids[i] {
			number(c)
		}
		post[i] = cq
		cq++
	}
	number(0)
	ancestor := func(a, b int32) bool { return pre[a] < pre[b] && post[a] > post[b] }

	// Backtracking over pattern nodes in preorder: assign each a
	// distinct tree node with matching label whose parent assignment is
	// an ancestor. Sibling order is free, so no preorder-increase
	// constraint — instead enforce injectivity explicitly.
	used := make(map[int32]bool, pattern.NumNodes())
	mapping := make([]int32, pattern.NumNodes())
	var try func(pi int) bool
	try = func(pi int) bool {
		if pi == pattern.NumNodes() {
			return true
		}
		for t := int32(0); t < int32(n); t++ {
			if used[t] || tree.Labels[t] != pattern.Labels[pi] {
				continue
			}
			if pp := pattern.Parent[pi]; pp >= 0 && !ancestor(mapping[pp], t) {
				continue
			}
			used[t] = true
			mapping[pi] = t
			if try(pi + 1) {
				return true
			}
			delete(used, t)
		}
		return false
	}
	return try(0)
}
