package subtree

import (
	"time"
)

// Execution models for the three mining engines of Fig. 9/10. All three
// decide the same inclusion relation; they differ in how the checking
// work is scheduled onto hardware:
//
//   - ASPEN: hundreds of candidate DPDAs run in parallel across LLC
//     banks at one symbol per cycle with no stalls (§IV, §VI-C);
//   - GPU: a SIMT model — 32-lane warps in lockstep, divergent lanes
//     serialized, warp runtime set by its slowest lane (the TREEBANK
//     pathology the paper describes);
//   - CPU: sequential checking, measured directly.

// ASPENMiner models parallel DPDA mining on ASPEN.
type ASPENMiner struct {
	// Banks is the number of LLC banks available for small DPDAs (the
	// paper repurposes 8 ways per slice; 8 ways × 4 banks × 8 slices =
	// 256 machine slots on the modeled Xeon-E5).
	Banks int
	// ClockMHz is the DPDA clock (850 MHz).
	ClockMHz float64
	// LoadBandwidthGBs models DRAM→LLC input streaming.
	LoadBandwidthGBs float64
	// ReportBandwidthGBs models report-vector readback.
	ReportBandwidthGBs float64
	// IntermediateNSPerCandidate models the CPU-side candidate
	// generation between iterations.
	IntermediateNSPerCandidate float64
	// ConfigBytesPerState models per-iteration machine loading.
	ConfigBytesPerState int
}

// DefaultASPENMiner is the paper's operating point.
func DefaultASPENMiner() ASPENMiner {
	return ASPENMiner{
		Banks:                      256,
		ClockMHz:                   850,
		LoadBandwidthGBs:           20,
		ReportBandwidthGBs:         20,
		IntermediateNSPerCandidate: 200,
		ConfigBytesPerState:        98,
	}
}

// MinerTiming breaks an engine's modeled run into the paper's Fig. 9
// components.
type MinerTiming struct {
	KernelNS       float64
	LoadNS         float64
	ReportNS       float64
	IntermediateNS float64
	ConfigNS       float64
}

// TotalNS is end-to-end time.
func (t MinerTiming) TotalNS() float64 {
	return t.KernelNS + t.LoadNS + t.ReportNS + t.IntermediateNS + t.ConfigNS
}

// Model computes ASPEN timing for a mining workload over a database of
// dbBytes total encoded input.
func (a ASPENMiner) Model(wl *Workload, dbBytes int64) MinerTiming {
	var t MinerTiming
	cycleNS := 1e3 / a.ClockMHz
	for _, it := range wl.Iterations {
		if it.AnchorRuns == 0 {
			continue
		}
		// Independent anchor runs schedule across banks; with runs ≫
		// banks the makespan approaches perfect division.
		kernelCycles := float64(it.AnchorSymbols) / float64(min64(int64(a.Banks), maxI64(it.AnchorRuns, 1)))
		t.KernelNS += kernelCycles * cycleNS
		t.ConfigNS += float64(it.MachineStates*a.ConfigBytesPerState) / (a.LoadBandwidthGBs) // ns: bytes / (GB/s) = ns·(B/B)
		t.IntermediateNS += float64(it.Candidates) * a.IntermediateNSPerCandidate
		// One pass of the database per iteration (input streaming) and
		// one report bit per run.
		t.LoadNS += float64(dbBytes) / a.LoadBandwidthGBs
		t.ReportNS += float64(it.AnchorRuns/8+1) / a.ReportBandwidthGBs
	}
	return t
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// GPUMiner is the SIMT execution model.
type GPUMiner struct {
	// WarpSize is lanes per warp (32 on the modeled TITAN Xp).
	WarpSize int
	// SMs × WarpsPerSM is the number of concurrently resident warps.
	SMs        int
	WarpsPerSM int
	// ClockMHz is the GPU core clock.
	ClockMHz float64
	// CyclesPerOp is the per-lane cost of one matching step.
	CyclesPerOp float64
	// TransferBandwidthGBs models host↔device copies.
	TransferBandwidthGBs float64
	// LaunchOverheadNS is per-iteration kernel launch + sync.
	LaunchOverheadNS float64
}

// DefaultGPUMiner approximates the paper's TITAN Xp running the
// memory-bound, gather-heavy matching kernel: 30 SMs with 4 schedulers
// each issue the resident warps, and each lockstep matching step costs
// ~12 cycles (uncoalesced label/sequence reads dominate).
func DefaultGPUMiner() GPUMiner {
	return GPUMiner{
		WarpSize: 32, SMs: 30, WarpsPerSM: 4,
		ClockMHz: 1500, CyclesPerOp: 5,
		TransferBandwidthGBs: 12, LaunchOverheadNS: 20000,
	}
}

// laneOp classifies one matching step (for divergence accounting).
type laneOp uint8

const (
	opDone laneOp = iota
	opMatch
	opSkipDown
	opPop
	opFail
)

// laneState steps the first-fit matcher one symbol, returning the op
// class executed. A lane owns one (candidate, tree) pair — GPUTreeMiner's
// thread granularity — and works through the tree's anchor sequences
// one after another, resetting the matcher between anchors.
type laneState struct {
	ep   []Label
	seqs [][]Label
	si   int // current anchor segment
	k    int
	skip int
	pos  int
}

func (l *laneState) done() bool { return l.si >= len(l.seqs) }

// nextSegment advances to the next anchor, if any.
func (l *laneState) nextSegment() {
	l.si++
	l.k = 0
	l.skip = 0
	l.pos = 0
}

func (l *laneState) step() laneOp {
	if l.done() {
		return opDone
	}
	seq := l.seqs[l.si]
	if l.k >= len(l.ep) || l.pos >= len(seq) {
		// Matched (or exhausted) this anchor: a sequential thread stops
		// at the first match, so a match retires the lane.
		if l.k >= len(l.ep) {
			l.si = len(l.seqs)
		} else {
			l.nextSegment()
		}
		if l.done() {
			return opDone
		}
		seq = l.seqs[l.si]
	}
	s := seq[l.pos]
	l.pos++
	if s != Up {
		if l.skip == 0 && l.ep[l.k] != Up && s == l.ep[l.k] {
			l.k++
			return opMatch
		}
		l.skip++
		return opSkipDown
	}
	switch {
	case l.skip > 0:
		l.skip--
		return opPop
	case l.ep[l.k] == Up:
		l.k++
		return opPop
	default:
		// This anchor failed; move to the next one.
		l.nextSegment()
		return opFail
	}
}

// SimulateChecks runs the SIMT model over a set of anchor runs (each a
// (pattern encoding, anchor sequence) pair) and returns simulated warp
// cycles. Lanes in a warp run in lockstep; each step costs one
// sub-cycle per distinct op class among active lanes (divergence
// serialization), and the warp retires with its slowest lane.
func (g GPUMiner) SimulateChecks(runs []LaneRun) int64 {
	var warpCycles int64
	for base := 0; base < len(runs); base += g.WarpSize {
		end := base + g.WarpSize
		if end > len(runs) {
			end = len(runs)
		}
		lanes := make([]laneState, end-base)
		for i := base; i < end; i++ {
			lanes[i-base] = laneState{ep: runs[i].Pattern, seqs: runs[i].Seqs}
		}
		for {
			var mask [5]bool
			active := false
			for i := range lanes {
				if lanes[i].done() {
					continue
				}
				active = true
				mask[lanes[i].step()] = true
			}
			if !active {
				break
			}
			distinct := int64(0)
			for _, m := range mask {
				if m {
					distinct++
				}
			}
			warpCycles += distinct
		}
	}
	return warpCycles
}

// LaneRun is one (pattern, tree) check for the SIMT model: the lane
// scans the tree's anchor sequences in order, stopping at the first
// match.
type LaneRun struct {
	Pattern []Label
	Seqs    [][]Label
}

// Symbols returns the lane's total input length.
func (r LaneRun) Symbols() int64 {
	var n int64
	for _, s := range r.Seqs {
		n += int64(len(s))
	}
	return n
}

// ModelFromCycles converts simulated warp cycles plus transfer volumes
// into timing, dividing across resident warps.
func (g GPUMiner) ModelFromCycles(warpCycles int64, iterations int, transferBytes int64) MinerTiming {
	resident := float64(g.SMs * g.WarpsPerSM)
	cycleNS := 1e3 / g.ClockMHz
	return MinerTiming{
		KernelNS:       float64(warpCycles) * g.CyclesPerOp * cycleNS / resident,
		LoadNS:         float64(transferBytes) / g.TransferBandwidthGBs,
		IntermediateNS: float64(iterations) * g.LaunchOverheadNS,
	}
}

// CPUMiner models the sequential TreeMatcher baseline: an optimized
// native matcher spends a handful of cycles per encoded symbol (branchy
// compare + pointer chase) and terminates a tree's anchor scan at the
// first match.
type CPUMiner struct {
	// CyclesPerSymbol is the per-symbol matching cost.
	CyclesPerSymbol float64
	// ClockGHz is the host clock.
	ClockGHz float64
	// IntermediateNSPerCandidate models candidate generation between
	// iterations (shared by all engines).
	IntermediateNSPerCandidate float64
}

// DefaultCPUMiner models the paper's 2.6 GHz Xeon running an optimized
// native matcher (TreeMatcher's scope-list pruning brings the effective
// per-symbol cost down to a few cycles).
func DefaultCPUMiner() CPUMiner {
	return CPUMiner{CyclesPerSymbol: 3, ClockGHz: 2.6, IntermediateNSPerCandidate: 200}
}

// KernelNS models checking time under early termination.
func (c CPUMiner) KernelNS(earlySymbols int64) float64 {
	return float64(earlySymbols) * c.CyclesPerSymbol / c.ClockGHz
}

// IntermediateNS models the shared CPU-side candidate generation.
func (c CPUMiner) IntermediateNS(candidates int) float64 {
	return float64(candidates) * c.IntermediateNSPerCandidate
}

// Measure runs fn and returns wall-clock nanoseconds (for reporting the
// Go implementation's own speed alongside the model).
func (CPUMiner) Measure(fn func()) float64 {
	start := time.Now()
	fn()
	return float64(time.Since(start).Nanoseconds())
}

// MiningEnergy models ASPEN's mining energy: per-symbol dynamic energy
// in the active banks plus host power during the CPU-side phases and a
// small LLC standby during the kernel (mining runs in the cache; the
// host core idles in a low-power state, unlike the parsing pipeline
// where the paper charges the full 20.15 W platform).
type MiningEnergy struct {
	DynamicPJPerSymbol float64
	KernelPowerW       float64
	HostPowerW         float64
}

// DefaultMiningEnergy uses the §V-B array energies (IM+SM+AL+switch ≈
// 84 pJ/cycle including wires).
func DefaultMiningEnergy() MiningEnergy {
	return MiningEnergy{DynamicPJPerSymbol: 84, KernelPowerW: 5, HostPowerW: 28.5}
}

// EnergyUJ computes total mining energy from the timing split.
func (e MiningEnergy) EnergyUJ(symbols int64, t MinerTiming) float64 {
	dynamic := float64(symbols) * e.DynamicPJPerSymbol * 1e-6
	kernel := e.KernelPowerW * t.KernelNS * 1e-3
	host := e.HostPowerW * (t.IntermediateNS + t.LoadNS + t.ReportNS + t.ConfigNS) * 1e-3
	return dynamic + kernel + host
}
