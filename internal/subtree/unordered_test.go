package subtree

import (
	"math/rand"
	"testing"
)

func TestUnorderedBasics(t *testing.T) {
	// T = A(B, C): pattern A(C, B) is unordered-included but not
	// ordered-included.
	tree := mk(t, []Label{0, 1, 2}, []int32{-1, 0, 0})
	swapped := mk(t, []Label{0, 2, 1}, []int32{-1, 0, 0})
	if IncludesInduced(swapped, tree) {
		t.Fatal("ordered should reject the swapped pattern")
	}
	if !IncludesInducedUnordered(swapped, tree) {
		t.Fatal("unordered induced should accept the swapped pattern")
	}
	if !IncludesEmbeddedUnordered(swapped, tree) {
		t.Fatal("unordered embedded should accept the swapped pattern")
	}
	// Injectivity: pattern A(B, B) needs two distinct B children.
	dbl := mk(t, []Label{0, 1, 1}, []int32{-1, 0, 0})
	if IncludesInducedUnordered(dbl, tree) {
		t.Fatal("A(B,B) should not match A(B,C) — injectivity")
	}
	tree2 := mk(t, []Label{0, 1, 1}, []int32{-1, 0, 0})
	if !IncludesInducedUnordered(dbl, tree2) {
		t.Fatal("A(B,B) should match A(B,B)")
	}
}

func TestUnorderedEmbeddedSkipsLevels(t *testing.T) {
	// T = A(X(C), B): pattern A(B, C) embedded-unordered (C via
	// descendant, order swapped) but not induced-unordered.
	tree := mk(t, []Label{0, 9, 2, 1}, []int32{-1, 0, 1, 0})
	pat := mk(t, []Label{0, 1, 2}, []int32{-1, 0, 0})
	if IncludesInducedUnordered(pat, tree) {
		t.Fatal("C is not a child of A — induced must reject")
	}
	if !IncludesEmbeddedUnordered(pat, tree) {
		t.Fatal("embedded unordered should accept")
	}
}

// Fig. 3 lattice: ordered ⊆ unordered and induced ⊆ embedded, on random
// pattern/tree pairs.
func TestInclusionLattice(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	for trial := 0; trial < 400; trial++ {
		pat := randomTree(r, 1+r.Intn(4), 3)
		tree := randomTree(r, 1+r.Intn(10), 3)
		io := IncludesInduced(pat, tree)
		eo := IncludesEmbedded(pat, tree)
		iu := IncludesInducedUnordered(pat, tree)
		eu := IncludesEmbeddedUnordered(pat, tree)
		if io && !eo {
			t.Fatalf("trial %d: induced-ordered ⊄ embedded-ordered", trial)
		}
		if io && !iu {
			t.Fatalf("trial %d: induced-ordered ⊄ induced-unordered", trial)
		}
		if eo && !eu {
			t.Fatalf("trial %d: embedded-ordered ⊄ embedded-unordered", trial)
		}
		if iu && !eu {
			t.Fatalf("trial %d: induced-unordered ⊄ embedded-unordered", trial)
		}
	}
}

// Single-node and chain patterns: all four relations coincide.
func TestInclusionDegenerateAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(98))
	for trial := 0; trial < 200; trial++ {
		tree := randomTree(r, 1+r.Intn(10), 3)
		leaf := Leaf(Label(r.Intn(3)))
		want := IncludesInduced(leaf, tree)
		if IncludesInducedUnordered(leaf, tree) != want ||
			IncludesEmbedded(leaf, tree) != want ||
			IncludesEmbeddedUnordered(leaf, tree) != want {
			t.Fatalf("trial %d: single-node relations diverge", trial)
		}
	}
}
