package subtree

import (
	"math/rand"
	"testing"
)

func TestParallelCountMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	db := make([]*Tree, 400)
	for i := range db {
		db[i] = randomTree(r, 2+r.Intn(12), 4)
	}
	for trial := 0; trial < 20; trial++ {
		pat := randomTree(r, 1+r.Intn(4), 4)
		want := CountSupport(pat, db)
		for _, workers := range []int{0, 1, 2, 4, 7} {
			if got := CountSupportParallel(pat, db, workers); got != want {
				t.Fatalf("workers=%d: count %d, sequential %d", workers, got, want)
			}
		}
	}
}

func TestParallelCountSmallDB(t *testing.T) {
	// Fewer trees than 2×workers falls back to sequential.
	db := []*Tree{Leaf(1), Leaf(2)}
	if got := CountSupportParallel(Leaf(1), db, 8); got != 1 {
		t.Fatalf("got %d", got)
	}
}

func BenchmarkCountSupportSequential(b *testing.B) {
	r := rand.New(rand.NewSource(62))
	db := make([]*Tree, 2000)
	for i := range db {
		db[i] = randomTree(r, 20, 5)
	}
	pat := randomTree(r, 3, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountSupport(pat, db)
	}
}

func BenchmarkCountSupportParallel(b *testing.B) {
	r := rand.New(rand.NewSource(62))
	db := make([]*Tree, 2000)
	for i := range db {
		db[i] = randomTree(r, 20, 5)
	}
	pat := randomTree(r, 3, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountSupportParallel(pat, db, 0)
	}
}
