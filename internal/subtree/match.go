package subtree

// This file defines the inclusion relations. The mining engines (ASPEN
// DPDA, CPU, GPU model) all decide *root-anchored first-fit induced
// ordered inclusion*: scanning the anchor subtree in preorder, a node
// matching the next expected pattern node is always taken (no
// backtracking), everything else is skipped as a whole subtree. First-fit
// success is a witness, so FirstFit ⊆ Exact; the two coincide unless a
// greedily-matched sibling steals a match a later sibling needed, which
// the tests characterize. Exact induced and embedded inclusion checkers
// are provided for validation and for the Fig. 3 taxonomy.

// matchFirstFitSeq decides first-fit inclusion of the encoded pattern ep
// within the encoded anchor subtree es. It is the executable
// specification the inclusion hDPDA is verified against (they share the
// skip-depth discipline; the DPDA keeps skip depth on its hardware
// stack).
func matchFirstFitSeq(ep, es []Label) bool {
	k := 0    // position in ep
	skip := 0 // nesting depth inside skipped subtrees
	for _, s := range es {
		if k >= len(ep) {
			return true
		}
		if s != Up {
			if skip == 0 && ep[k] != Up && s == ep[k] {
				k++ // match-descend
			} else {
				skip++ // skip-descend
			}
		} else {
			switch {
			case skip > 0:
				skip--
			case ep[k] == Up:
				k++ // matched node closes in step with the pattern
			default:
				return false // node ended while the pattern expects children
			}
		}
	}
	return k >= len(ep)
}

// IncludesFirstFit reports whether pattern occurs in tree (first-fit,
// root-anchored at any node whose label equals the pattern root).
func IncludesFirstFit(pattern, tree *Tree) bool {
	ep := pattern.Encode()
	root := pattern.Labels[0]
	for i := int32(0); i < int32(tree.NumNodes()); i++ {
		if tree.Labels[i] != root {
			continue
		}
		if matchFirstFitSeq(ep, tree.EncodeSubtree(i)) {
			return true
		}
	}
	return false
}

// IncludesInduced decides exact induced ordered inclusion: an injective,
// order-preserving map from pattern nodes to tree nodes preserving
// parent-child edges and labels.
func IncludesInduced(pattern, tree *Tree) bool {
	pattern.buildKids()
	tree.buildKids()
	memo := map[[2]int32]bool{}
	var can func(p, t int32) bool
	can = func(p, t int32) bool {
		key := [2]int32{p, t}
		if v, ok := memo[key]; ok {
			return v
		}
		ok := false
		if pattern.Labels[p] == tree.Labels[t] {
			ok = matchChildSeq(pattern, tree, pattern.kids[p], tree.kids[t], can)
		}
		memo[key] = ok
		return ok
	}
	for t := int32(0); t < int32(tree.NumNodes()); t++ {
		if can(0, t) {
			return true
		}
	}
	return false
}

// matchChildSeq decides whether the pattern children pc can be matched,
// in order, to a subsequence of tree children tc, each pair satisfying
// can.
func matchChildSeq(pattern, tree *Tree, pc, tc []int32, can func(p, t int32) bool) bool {
	// dp[i] = smallest j such that pc[:i] matches into tc[:j]; greedy
	// over tc with backtracking is exponential, so use DP.
	n, m := len(pc), len(tc)
	if n == 0 {
		return true
	}
	if n > m {
		return false
	}
	// reach[i] after processing tc prefix: classic subsequence DP.
	reach := make([]bool, n+1)
	reach[0] = true
	for j := 0; j < m; j++ {
		for i := n - 1; i >= 0; i-- {
			if reach[i] && !reach[i+1] && can(pc[i], tc[j]) {
				reach[i+1] = true
			}
		}
		if reach[n] {
			return true
		}
	}
	return reach[n]
}

// IncludesEmbedded decides exact embedded ordered inclusion (paper
// Fig. 3): a label-preserving mapping φ from pattern nodes to tree
// nodes that is strictly increasing in preorder and maps every pattern
// parent-child edge to an ancestor-descendant pair.
func IncludesEmbedded(pattern, tree *Tree) bool {
	// pre/post numbering for O(1) ancestor tests.
	n := tree.NumNodes()
	pre := make([]int32, n)
	post := make([]int32, n)
	var cp, cq int32
	var number func(i int32)
	number = func(i int32) {
		pre[i] = cp
		cp++
		for _, c := range tree.Children(i) {
			number(c)
		}
		post[i] = cq
		cq++
	}
	number(0)
	ancestor := func(a, b int32) bool { return pre[a] < pre[b] && post[a] > post[b] }

	mapping := make([]int32, pattern.NumNodes())
	var try func(pi int, minNode int32) bool
	try = func(pi int, minNode int32) bool {
		if pi == pattern.NumNodes() {
			return true
		}
		for t := minNode; t < int32(n); t++ {
			if tree.Labels[t] != pattern.Labels[pi] {
				continue
			}
			if pp := pattern.Parent[pi]; pp >= 0 && !ancestor(mapping[pp], t) {
				continue
			}
			mapping[pi] = t
			if try(pi+1, t+1) {
				return true
			}
		}
		return false
	}
	return try(0, 0)
}
