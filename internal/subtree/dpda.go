package subtree

import (
	"fmt"

	"aspen/internal/core"
)

// Inclusion automata (the ASPEN mining kernel): each candidate subtree
// compiles to a small hDPDA that decides first-fit inclusion over the
// preorder string encoding of an anchor subtree. The machine has no
// ε-transitions — the paper's observation that subtree-inclusion DPDAs
// run one input symbol per cycle, making mining runtime linear in input
// length. The hardware stack carries one frame per tree level: the
// matched pattern label on match-descent, a SKIP marker on
// skip-descent, so the stack alphabet is the pattern's label set plus
// two (Table V's "Stack Alphabets = Alphabets + 1" shape) and the stack
// depth is bounded by tree depth (Table V "Stack-Size").

// Input symbol encoding for inclusion machines.
const (
	// SymOther encodes any tree label outside the pattern's alphabet.
	SymOther core.Symbol = 0
	// SymUp encodes the backtrack marker.
	SymUp core.Symbol = 1
	// symLabelBase is the first code assigned to pattern labels.
	symLabelBase core.Symbol = 2
)

// Stack symbol encoding: core.BottomOfStack (0) is ⊥, stkSkip marks
// skipped-subtree frames, pattern labels start at symLabelBase.
const stkSkip core.Symbol = 1

// InclusionMachine is a compiled candidate.
type InclusionMachine struct {
	Pattern *Tree
	Machine *core.HDPDA
	// proj maps tree labels to input symbols (labels outside the
	// pattern's alphabet project to SymOther).
	proj map[Label]core.Symbol
	// enc is the pattern's preorder string encoding.
	enc []Label
}

// NewInclusionMachine compiles pattern into its inclusion hDPDA.
func NewInclusionMachine(pattern *Tree) (*InclusionMachine, error) {
	if err := pattern.Validate(); err != nil {
		return nil, err
	}
	labels := pattern.DistinctLabels()
	if len(labels) > 250 {
		return nil, fmt.Errorf("subtree: pattern has %d distinct labels; the 8-bit alphabet allows 250", len(labels))
	}
	im := &InclusionMachine{
		Pattern: pattern,
		proj:    make(map[Label]core.Symbol, len(labels)),
		enc:     pattern.Encode(),
	}
	for i, l := range labels {
		im.proj[l] = symLabelBase + core.Symbol(i)
	}

	m := &core.HDPDA{Name: fmt.Sprintf("incl-%s", pattern.Key())}
	allLabels := core.AllSymbols()
	allLabels.Remove(SymUp) // every non-Up input symbol is a label
	notSkip := core.AllSymbols()
	notSkip.Remove(stkSkip)

	ep := im.enc
	mpos := len(ep)

	// One entry-state set per pattern position; entries[k] lists the
	// states whose activation means "now at position k".
	type posStates struct {
		match  core.StateID // consumes ep[k] (label) at match level
		up     core.StateID // consumes Up when ep[k] == Up
		skipA  core.StateID // skip-descend on a non-matching label
		skipB  core.StateID // skip-descend on ep[k] inside a skip region
		skipUp core.StateID // ascend within a skip region
	}
	ps := make([]posStates, mpos)
	for k := 0; k < mpos; k++ {
		accept := k == mpos-1 // completing the last position reports
		if ep[k] != Up {
			sym := im.proj[ep[k]]
			ps[k].match = m.AddState(core.State{
				Label:  fmt.Sprintf("p%d:match(%d)", k, ep[k]),
				Input:  core.NewSymbolSet(sym),
				Stack:  notSkip,
				Op:     core.StackOp{Push: sym, HasPush: true},
				Accept: accept,
			})
			skipIn := allLabels
			skipIn.Remove(sym)
			ps[k].skipA = m.AddState(core.State{
				Label: fmt.Sprintf("p%d:skipA", k),
				Input: skipIn,
				Stack: core.AllSymbols(),
				Op:    core.StackOp{Push: stkSkip, HasPush: true},
			})
			ps[k].skipB = m.AddState(core.State{
				Label: fmt.Sprintf("p%d:skipB", k),
				Input: core.NewSymbolSet(sym),
				Stack: core.NewSymbolSet(stkSkip),
				Op:    core.StackOp{Push: stkSkip, HasPush: true},
			})
		} else {
			labelFrames := core.AllSymbols()
			labelFrames.Remove(stkSkip)
			labelFrames.Remove(core.BottomOfStack)
			ps[k].up = m.AddState(core.State{
				Label:  fmt.Sprintf("p%d:up", k),
				Input:  core.NewSymbolSet(SymUp),
				Stack:  labelFrames,
				Op:     core.StackOp{Pop: 1},
				Accept: accept,
			})
			ps[k].skipA = m.AddState(core.State{
				Label: fmt.Sprintf("p%d:skipA", k),
				Input: allLabels,
				Stack: core.AllSymbols(),
				Op:    core.StackOp{Push: stkSkip, HasPush: true},
			})
		}
		ps[k].skipUp = m.AddState(core.State{
			Label: fmt.Sprintf("p%d:skipUp", k),
			Input: core.NewSymbolSet(SymUp),
			Stack: core.NewSymbolSet(stkSkip),
			Op:    core.StackOp{Pop: 1},
		})
	}
	start := m.AddState(core.State{Label: "start", Epsilon: true, Stack: core.AllSymbols()})
	m.Start = start

	// successors of "being at position k": advance states enter k+1,
	// skip states re-enter k.
	succOf := func(k int) []core.StateID {
		var out []core.StateID
		if k >= mpos {
			return nil // pattern complete: input is exhausted here
		}
		if ep[k] != Up {
			out = append(out, ps[k].match, ps[k].skipA, ps[k].skipB, ps[k].skipUp)
		} else {
			out = append(out, ps[k].up, ps[k].skipA, ps[k].skipUp)
		}
		return out
	}
	connect := func(from core.StateID, k int) {
		for _, t := range succOf(k) {
			m.AddEdge(from, t)
		}
	}
	connect(start, 0)
	for k := 0; k < mpos; k++ {
		if ep[k] != Up {
			connect(ps[k].match, k+1)
			connect(ps[k].skipB, k)
		} else {
			connect(ps[k].up, k+1)
		}
		connect(ps[k].skipA, k)
		connect(ps[k].skipUp, k)
	}

	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("subtree: inclusion machine invalid: %w", err)
	}
	im.Machine = m
	return im, nil
}

// EncodeInput projects a preorder string encoding onto the machine's
// input alphabet.
func (im *InclusionMachine) EncodeInput(seq []Label) []core.Symbol {
	out := make([]core.Symbol, len(seq))
	for i, s := range seq {
		switch {
		case s == Up:
			out[i] = SymUp
		default:
			if sym, ok := im.proj[s]; ok {
				out[i] = sym
			} else {
				out[i] = SymOther
			}
		}
	}
	return out
}

// AlphabetSize is the number of distinct input symbols the machine
// distinguishes (pattern labels + Up + other) — Table V "Automata
// Alphabets".
func (im *InclusionMachine) AlphabetSize() int { return len(im.proj) + 2 }

// StackAlphabetSize is ⊥ + SKIP + pattern labels — Table V "Stack
// Alphabets".
func (im *InclusionMachine) StackAlphabetSize() int { return len(im.proj) + 2 }

// MatchesAnchor runs the machine over the subtree rooted at anchor.
func (im *InclusionMachine) MatchesAnchor(tree *Tree, anchor int32) (bool, error) {
	in := im.EncodeInput(tree.EncodeSubtree(anchor))
	res, err := im.Machine.Run(in, core.ExecOptions{})
	if err != nil {
		return false, err
	}
	return res.Accepted, nil
}

// Includes runs the machine over every root-label anchor in tree.
func (im *InclusionMachine) Includes(tree *Tree) (bool, error) {
	root := im.Pattern.Labels[0]
	for i := int32(0); i < int32(tree.NumNodes()); i++ {
		if tree.Labels[i] != root {
			continue
		}
		ok, err := im.MatchesAnchor(tree, i)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Anchors returns the anchor nodes of tree for this pattern (the
// CPU-side preprocessing step).
func (im *InclusionMachine) Anchors(tree *Tree) []int32 {
	var out []int32
	root := im.Pattern.Labels[0]
	for i := int32(0); i < int32(tree.NumNodes()); i++ {
		if tree.Labels[i] == root {
			out = append(out, i)
		}
	}
	return out
}

// execOptsForTest exposes default exec options (tests run the machine
// directly).
func (im *InclusionMachine) execOptsForTest() core.ExecOptions { return core.ExecOptions{} }
