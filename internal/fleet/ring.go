package fleet

import (
	"sort"
	"strconv"
)

// Consistent-hash ring. Each member contributes vnodes virtual points
// (FNV-1a of "name#i") on a 64-bit ring; a key is owned by the first
// point clockwise from its hash. Placement is therefore stable under
// membership health changes — when a node dies, only the keys it owned
// move (to the next point clockwise), and they move back when it
// recovers, which is what makes health-checked placement cheap: the
// ring itself never rebuilds, lookups just skip unusable members.
//
// Keys are grammar identities: the compiled machine's
// HDPDA.Fingerprint when the fleet has reported one (identical on
// every node, because compilation is deterministic), else the grammar
// name — and durable sessions fold the session ID in, so one grammar's
// sessions spread across nodes while each individual session stays
// sticky.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	m    *member
}

// fnv64 is the 64-bit FNV-1a the ring and keys hash with.
func fnv64(parts ...string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h = (h ^ uint64(p[i])) * 0x100000001b3
		}
		h = (h ^ 0x1f) * 0x100000001b3 // part separator, so ("ab","c") != ("a","bc")
	}
	return h
}

// newRing places every member's virtual points and sorts the ring.
func newRing(members []*member, vnodes int) *ring {
	if vnodes < 1 {
		vnodes = 1
	}
	r := &ring{points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, m := range members {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: fnv64(m.name, strconv.Itoa(i)), m: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// ranked returns every distinct member in preference order for key:
// the owner first, then each successive distinct member clockwise.
// Callers filter by health/breaker state — the ring is pure placement.
func (r *ring) ranked(key uint64, out []*member) []*member {
	out = out[:0]
	if len(r.points) == 0 {
		return out
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	for i := 0; i < len(r.points); i++ {
		m := r.points[(start+i)%len(r.points)].m
		seen := false
		for _, o := range out {
			if o == m {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, m)
		}
	}
	return out
}
