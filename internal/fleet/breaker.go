package fleet

import (
	"sync"
	"time"
)

// breaker is the per-node circuit breaker guarding forwards. Closed
// while the node answers; threshold consecutive forwarding failures
// open it, and while open the placement layer skips the node entirely —
// a dead member costs one connection-refused per cooldown, not one per
// request. After the cooldown one probe request is allowed through
// (half-open); its outcome closes the breaker or re-arms the cooldown.
//
// Forwarding failures are transport errors and 5xx answers that mean
// "this node cannot take the work" (502/503/504). Backpressure (429)
// never counts: a node shedding load by design is healthy.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	probing   bool
	openedAt  int64 // total opens, for metrics reads under mu
}

// allow reports whether a forward may be sent to this node now.
// During half-open, exactly one caller gets probe=true and must report
// the outcome via success/failure — other callers are refused until it
// does.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return true
	}
	if now.Before(b.openUntil) || b.probing {
		return false
	}
	b.probing = true // half-open: this caller carries the probe
	return true
}

// success records a completed forward: the breaker closes.
func (b *breaker) success() {
	b.mu.Lock()
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records a failed forward, opening the breaker at threshold
// (and re-arming the cooldown on a failed half-open probe). Reports
// whether this failure transitioned the breaker to open.
func (b *breaker) failure(now time.Time) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	wasOpen := b.fails >= b.threshold
	b.fails++
	b.probing = false
	if b.fails >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
		if !wasOpen {
			b.openedAt++
			return true
		}
	}
	return false
}

// open reports whether the breaker is currently refusing forwards.
func (b *breaker) open(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails >= b.threshold && (now.Before(b.openUntil) || b.probing)
}
