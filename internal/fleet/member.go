package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"aspen/internal/telemetry"
)

// Member health states, as decided by the prober (and accelerated by
// forwarding failures through the breaker).
const (
	stateReady   = int32(iota) // /readyz answers 200: place work here
	stateUnready               // /readyz answers non-200: alive but refusing new work (draining, retiring)
	stateDown                  // /readyz unreachable failThreshold times in a row
)

func stateName(s int32) string {
	switch s {
	case stateReady:
		return "ready"
	case stateUnready:
		return "unready"
	default:
		return "down"
	}
}

// member is one aspend node the router places work on.
type member struct {
	name string // display name and ring identity (host:port)
	base string // http://host:port

	state atomic.Int32
	fails atomic.Int32 // consecutive probe transport failures

	br breaker

	// grammars is the node's latest /v1/grammars poll: name →
	// fingerprint, in a sorted "name=fp" list for cheap convergence
	// comparison. nil until the first successful poll.
	grammars atomic.Pointer[[]string]

	lastErr atomic.Pointer[string]

	// latency is the EWMA of successful whole-document forward times
	// (ns). Sheds (429) and retryable failures are excluded — a node
	// failing fast must not look fast. gray is the derived verdict,
	// recomputed each probe round against the fleet-wide minimum: a
	// member whose EWMA exceeds GrayFactor × the best ready member's is
	// slow-but-ready (gray silicon, a saturated neighbor VM) and is
	// demoted to last-resort placement without being removed.
	latency telemetry.EWMA
	gray    atomic.Bool

	// Per-node series: state-loss transitions, forwards, forwarding
	// failures, breaker opens, gray demotions.
	unhealthyTotal *telemetry.Counter
	forwards       *telemetry.Counter
	forwardErrs    *telemetry.Counter
	breakerOpens   *telemetry.Counter
	readyGauge     *telemetry.Gauge
	grayGauge      *telemetry.Gauge
}

func newMember(addr string, reg *telemetry.Registry) *member {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	name := strings.TrimPrefix(strings.TrimPrefix(base, "http://"), "https://")
	m := &member{
		name: name,
		base: strings.TrimRight(base, "/"),
		unhealthyTotal: reg.Counter(telemetry.LabeledName("fleet_node_unhealthy_total", "node", name),
			"transitions of a fleet member out of the ready state, by node"),
		forwards: reg.Counter(telemetry.LabeledName("fleet_node_forwards_total", "node", name),
			"requests forwarded to each fleet member"),
		forwardErrs: reg.Counter(telemetry.LabeledName("fleet_node_forward_errors_total", "node", name),
			"forwards that failed at the transport or with a retryable 5xx, by node"),
		breakerOpens: reg.Counter(telemetry.LabeledName("fleet_breaker_opens_total", "node", name),
			"circuit-breaker open transitions, by node"),
		readyGauge: reg.Gauge(telemetry.LabeledName("fleet_node_ready", "node", name),
			"1 while the member's /readyz answers 200"),
		grayGauge: reg.Gauge(telemetry.LabeledName("fleet_node_gray", "node", name),
			"1 while the member is demoted as gray (ready but much slower than the fleet)"),
	}
	m.readyGauge.SetInt(1) // optimistic until the first probe says otherwise
	return m
}

// setState publishes a probe verdict, counting ready→non-ready
// transitions.
func (m *member) setState(s int32) {
	prev := m.state.Swap(s)
	if prev == stateReady && s != stateReady {
		m.unhealthyTotal.Inc()
	}
	if s == stateReady {
		m.readyGauge.SetInt(1)
	} else {
		m.readyGauge.SetInt(0)
	}
}

func (m *member) setErr(err error) {
	if err == nil {
		m.lastErr.Store(nil)
		return
	}
	s := err.Error()
	m.lastErr.Store(&s)
}

// usable reports whether new work may be placed on this member right
// now: probed ready and not breaker-open. Gray members stay usable —
// demotion reorders them to the back of the candidate list, it never
// removes capacity.
func (m *member) usable(now time.Time) bool {
	return m.state.Load() == stateReady && !m.br.open(now)
}

// setGray publishes a gray verdict and its gauge.
func (m *member) setGray(g bool) {
	m.gray.Store(g)
	if g {
		m.grayGauge.SetInt(1)
	} else {
		m.grayGauge.SetInt(0)
	}
}

// noteForwardFailure records a failed forward against the breaker,
// counting open transitions; a transport-level failure also flips the
// member straight to down — the prober will bring it back, but traffic
// must stop routing here immediately, not after failThreshold probes.
func (m *member) noteForwardFailure(now time.Time, transport bool) {
	m.forwardErrs.Inc()
	if m.br.failure(now) {
		m.breakerOpens.Inc()
	}
	if transport {
		m.setState(stateDown)
	}
}

// probe runs one health-check round: /readyz decides the state, and on
// a ready node /v1/grammars refreshes the registry view used for
// placement keys and convergence checks.
func (m *member) probe(client *http.Client, timeout time.Duration, failThreshold int) {
	st, err := m.probeReady(client, timeout)
	switch {
	case err != nil:
		m.setErr(err)
		if f := m.fails.Add(1); int(f) >= failThreshold {
			m.setState(stateDown)
		}
		return
	case st == http.StatusOK:
		m.fails.Store(0)
		m.setErr(nil)
		m.setState(stateReady)
		// Deliberately NOT br.success(): readiness is control-plane
		// health, the breaker is data-plane health. A node can answer
		// /readyz while its parse path fails; only a real forward
		// (the half-open probe) closes the breaker.
	default:
		m.fails.Store(0)
		m.setErr(fmt.Errorf("/readyz answered %d", st))
		m.setState(stateUnready)
		return
	}
	if gs, err := fetchGrammars(client, m.base, timeout); err == nil {
		m.grammars.Store(&gs)
	}
}

func (m *member) probeReady(client *http.Client, timeout time.Duration) (int, error) {
	req, err := http.NewRequest(http.MethodGet, m.base+"/readyz", nil)
	if err != nil {
		return 0, err
	}
	ctx, cancel := timeoutCtx(timeout)
	defer cancel()
	resp, err := client.Do(req.WithContext(ctx))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// grammarList is the subset of serve.GrammarInfo the router reads.
// Declared locally so the fleet package has no import cycle with
// internal/serve.
type grammarList []struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
}

// fetchGrammars polls a node's /v1/grammars into the sorted
// "name=fingerprint" form members compare for convergence.
func fetchGrammars(client *http.Client, base string, timeout time.Duration) ([]string, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/v1/grammars", nil)
	if err != nil {
		return nil, err
	}
	ctx, cancel := timeoutCtx(timeout)
	defer cancel()
	resp, err := client.Do(req.WithContext(ctx))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("/v1/grammars answered %d", resp.StatusCode)
	}
	var infos grammarList
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, err
	}
	out := make([]string, 0, len(infos))
	for _, g := range infos {
		out = append(out, g.Name+"="+g.Fingerprint)
	}
	sort.Strings(out)
	return out, nil
}

// fingerprintOf extracts the fingerprint for name from a member's
// polled registry view ("" when unknown).
func fingerprintOf(gs []string, name string) string {
	prefix := name + "="
	for _, g := range gs {
		if strings.HasPrefix(g, prefix) {
			return g[len(prefix):]
		}
	}
	return ""
}
