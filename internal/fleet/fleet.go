// Package fleet is the ASPEN fleet router: a stateless front tier that
// places grammars and durable parse sessions across N aspend nodes and
// keeps answering while nodes die, drain, and come back.
//
// Placement is a consistent-hash ring keyed by grammar identity — the
// compiled machine's fingerprint once any node has reported one (the
// compiler is deterministic, so every converged node agrees), the
// grammar name until then. Durable sessions fold the session ID into
// the key, so one grammar's sessions spread across the fleet while
// each individual session stays sticky to its owner.
//
// Health is two layers. A prober polls every member's /readyz (a node
// flips unready at SIGTERM before its drain starts, and during hitless
// swap retirement) and /v1/grammars (for fingerprints and registry
// convergence). Independently, each member has a circuit breaker fed
// by forwarding failures, so a node that dies between probes stops
// receiving traffic after one connection error, not after the prober
// notices. Backpressure (429) is never a failure — the router honors
// Retry-After and re-sends; a node shedding load by design is healthy.
//
// Session failover is a file transfer, built on the sealed
// fingerprint-stamped checkpoints every durable session persists: the
// router caches each session's latest checkpoint image — fetched from
// the owner after the owner acknowledged the chunk but before the
// router relays that ack to the client, so the cache is never behind
// any state the client believes is durable — and when the owner dies
// it ships the image to the next ranked node and resends the unacked
// chunk there. The client sees one slow request, then byte-identical
// output from the replacement.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aspen/internal/telemetry"
)

// Defaults for Options fields left zero.
const (
	DefaultProbeInterval    = 250 * time.Millisecond
	DefaultProbeTimeout     = 2 * time.Second
	DefaultFailThreshold    = 2
	DefaultRequestTimeout   = 30 * time.Second
	DefaultMaxBodyBytes     = int64(64 << 20)
	DefaultMaxRetries       = 3
	DefaultRetryBackoff     = 50 * time.Millisecond
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 2 * time.Second
	DefaultVNodes           = 64
	DefaultSessionIdleTTL   = 15 * time.Minute
	DefaultGrayFactor       = 3.0
	DefaultGrayMinSamples   = 16
	// DefaultHedgeDelay is the hedge trigger until the forward-phase
	// histogram is warm enough for a p95-derived delay.
	DefaultHedgeDelay = 50 * time.Millisecond
	// hedgeMinSamples gates the p95-derived delay on a warm histogram.
	hedgeMinSamples = 50
)

// Options configures a Router. Nodes is required; everything else has
// a sensible default.
type Options struct {
	// Nodes are the aspend members, as host:port or http://host:port.
	Nodes []string
	// Registry receives the router's metrics (a fresh one when nil).
	Registry *telemetry.Registry

	// ProbeInterval/ProbeTimeout drive the /readyz + /v1/grammars
	// prober; FailThreshold consecutive probe transport errors mark a
	// member down.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	FailThreshold int

	// RequestTimeout bounds one client request end to end, retries and
	// failover included. MaxBodyBytes caps the buffered request body
	// (bodies are buffered so retries can re-send them).
	RequestTimeout time.Duration
	MaxBodyBytes   int64

	// MaxRetries bounds forward attempts beyond the first (0 = the
	// default, negative = no retries at all);
	// RetryBackoff is the base of the exponential backoff+jitter
	// between attempts (429 Retry-After overrides it).
	MaxRetries   int
	RetryBackoff time.Duration

	// BreakerThreshold consecutive forwarding failures open a member's
	// circuit breaker for BreakerCooldown.
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// VNodes is each member's virtual-point count on the placement ring.
	VNodes int

	// GrayFactor demotes a ready member to last-resort placement when
	// its successful-forward latency EWMA exceeds GrayFactor × the
	// fastest ready member's (0 = DefaultGrayFactor). GrayMinSamples
	// forwards must be observed on both sides before the comparison
	// means anything (0 = DefaultGrayMinSamples).
	GrayFactor     float64
	GrayMinSamples int

	// Hedge arms hedged requests for idempotent whole-document parses:
	// when the primary node has not answered within the hedge delay
	// (p95 of observed forward latency, DefaultHedgeDelay until warm),
	// the same request is fired at the next-ranked node, the first
	// answer wins, and the loser is canceled. Durable-session chunks
	// are never hedged — replaying a chunk at two nodes would double
	// its side effects.
	Hedge bool

	// SessionIdleTTL reaps router session state (sticky placement plus
	// cached checkpoint image) untouched for this long. Only the
	// router's memory is reclaimed — the node-side durable checkpoint
	// stays, so a returning client resumes while its owner node lives.
	SessionIdleTTL time.Duration

	// Client overrides the outbound HTTP client (tests).
	Client *http.Client

	// FlightSize/SlowThreshold size the router's flight recorder.
	FlightSize    int
	SlowThreshold time.Duration
}

func (o *Options) withDefaults() error {
	if len(o.Nodes) == 0 {
		return fmt.Errorf("fleet: no nodes configured")
	}
	if o.Registry == nil {
		o.Registry = telemetry.NewRegistry()
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = DefaultProbeInterval
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = DefaultProbeTimeout
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = DefaultFailThreshold
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = DefaultMaxRetries
	} else if o.MaxRetries < 0 {
		o.MaxRetries = 0 // negative = explicitly no retries
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = DefaultRetryBackoff
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = DefaultBreakerThreshold
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = DefaultBreakerCooldown
	}
	if o.VNodes <= 0 {
		o.VNodes = DefaultVNodes
	}
	if o.GrayFactor <= 1 {
		o.GrayFactor = DefaultGrayFactor
	}
	if o.GrayMinSamples <= 0 {
		o.GrayMinSamples = DefaultGrayMinSamples
	}
	if o.SessionIdleTTL <= 0 {
		o.SessionIdleTTL = DefaultSessionIdleTTL
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return nil
}

// Router is the fleet front tier. Construct with New, serve Handler(),
// stop with Close.
type Router struct {
	opt     Options
	members []*member
	byName  map[string]*member
	ring    *ring
	client  *http.Client
	reg     *telemetry.Registry
	m       routerMetrics
	flight  *telemetry.FlightRecorder
	mux     *http.ServeMux

	sessions sessionTable

	// hedgeNS is the cached hedge-trigger delay, refreshed from the
	// forward-phase p95 at probe ticks (0 until warm — readers fall
	// back to DefaultHedgeDelay).
	hedgeNS atomic.Int64

	traceBase uint64
	idSeq     atomic.Uint64

	stop   chan struct{}
	probed sync.WaitGroup
}

// New builds a Router over opt.Nodes and starts its health prober.
func New(opt Options) (*Router, error) {
	if err := opt.withDefaults(); err != nil {
		return nil, err
	}
	rt := &Router{
		opt:    opt,
		byName: make(map[string]*member, len(opt.Nodes)),
		client: opt.Client,
		reg:    opt.Registry,
		m:      newRouterMetrics(opt.Registry),
		stop:   make(chan struct{}),
	}
	for _, addr := range opt.Nodes {
		m := newMember(addr, opt.Registry)
		m.br.threshold = opt.BreakerThreshold
		m.br.cooldown = opt.BreakerCooldown
		if _, dup := rt.byName[m.name]; dup {
			return nil, fmt.Errorf("fleet: duplicate node %q", m.name)
		}
		rt.byName[m.name] = m
		rt.members = append(rt.members, m)
	}
	rt.ring = newRing(rt.members, opt.VNodes)
	rt.flight = telemetry.NewFlightRecorder(opt.FlightSize, opt.FlightSize/4,
		int64(opt.SlowThreshold), phaseNames)
	rt.sessions.init(&rt.m)
	rt.traceBase = uint64(time.Now().UnixNano())

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/parse/{grammar}", rt.handleParse)
	rt.mux.HandleFunc("GET /v1/grammars", rt.handleGrammars)
	rt.mux.HandleFunc("GET /v1/admin/grammars", rt.handleGrammars)
	rt.mux.HandleFunc("POST /v1/admin/grammars", rt.handleAdmin)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /readyz", rt.handleHealth) // the router is ready iff it is healthy
	rt.mux.Handle("GET /v1/debug/requests", rt.flight)
	telemetry.Routes(rt.mux, rt.reg)

	rt.probeAll() // one synchronous round so the first request sees real states
	rt.probed.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// Handler is the router's HTTP surface.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Flight exposes the router's flight recorder (tests).
func (rt *Router) Flight() *telemetry.FlightRecorder { return rt.flight }

// Close stops the health prober. In-flight forwards finish on their
// own deadlines.
func (rt *Router) Close() {
	close(rt.stop)
	rt.probed.Wait()
}

func (rt *Router) probeLoop() {
	defer rt.probed.Done()
	t := time.NewTicker(rt.opt.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.probeAll()
			rt.sessions.sweep(time.Now(), rt.opt.SessionIdleTTL)
		}
	}
}

// probeAll runs one concurrent health round and refreshes the
// ready-count and divergence gauges.
func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, m := range rt.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			m.probe(rt.client, rt.opt.ProbeTimeout, rt.opt.FailThreshold)
		}(m)
	}
	wg.Wait()
	ready := 0
	for _, m := range rt.members {
		if m.state.Load() == stateReady {
			ready++
		}
	}
	rt.m.ready.SetInt(int64(ready))
	if rt.registryConverged() {
		rt.m.diverged.SetInt(0)
	} else {
		rt.m.diverged.SetInt(1)
	}
	rt.refreshGray()
	rt.refreshHedgeDelay()
}

// refreshGray recomputes each member's gray verdict against the fleet:
// the reference is the fastest ready member's latency EWMA (with a
// warm sample count), and anyone slower than GrayFactor × that is
// demoted. The fastest member can never be gray by construction, so
// demotion always leaves at least one undemoted candidate while
// latencies diverge.
func (rt *Router) refreshGray() {
	min := 0.0
	have := false
	for _, m := range rt.members {
		if m.state.Load() != stateReady || m.latency.Samples() < int64(rt.opt.GrayMinSamples) {
			continue
		}
		if v := m.latency.Value(); !have || v < min {
			min, have = v, true
		}
	}
	for _, m := range rt.members {
		g := have &&
			m.latency.Samples() >= int64(rt.opt.GrayMinSamples) &&
			m.latency.Value() > rt.opt.GrayFactor*min
		m.setGray(g)
	}
}

// refreshHedgeDelay re-derives the hedge trigger from the observed
// forward-phase p95 once the histogram is warm.
func (rt *Router) refreshHedgeDelay() {
	hv := rt.m.phaseNS[phaseForward].Value()
	if hv.Count < hedgeMinSamples {
		return
	}
	p95 := int64(hv.Quantile(0.95))
	if lo := int64(time.Millisecond); p95 < lo {
		p95 = lo
	}
	if hi := rt.opt.RequestTimeout.Nanoseconds() / 4; hi > 0 && p95 > hi {
		p95 = hi
	}
	rt.hedgeNS.Store(p95)
}

// hedgeDelay is the current hedge trigger.
func (rt *Router) hedgeDelay() time.Duration {
	if ns := rt.hedgeNS.Load(); ns > 0 {
		return time.Duration(ns)
	}
	return DefaultHedgeDelay
}

// registryConverged reports whether every ready member with a polled
// registry view agrees on it (names and fingerprints both).
func (rt *Router) registryConverged() bool {
	var ref []string
	have := false
	for _, m := range rt.members {
		if m.state.Load() != stateReady {
			continue
		}
		gs := m.grammars.Load()
		if gs == nil {
			continue
		}
		if !have {
			ref, have = *gs, true
			continue
		}
		if !equalStrings(ref, *gs) {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fingerprintFor resolves the placement identity of a grammar: the
// machine fingerprint any member has reported for it, else the name
// itself. On a converged fleet every member reports the same value, so
// "any member" is deterministic where it matters.
func (rt *Router) fingerprintFor(grammar string) string {
	for _, m := range rt.members {
		if gs := m.grammars.Load(); gs != nil {
			if fp := fingerprintOf(*gs, grammar); fp != "" {
				return fp
			}
		}
	}
	return grammar
}

// candidatesFor ranks the fleet for a placement key and filters to
// currently usable members, demoting gray (slow-but-ready) members
// behind every healthy one — a stable partition, so ring order is
// preserved within each class and gray capacity is still reachable
// when nothing better remains. The full ranking (ignoring health) is
// returned too — failover wants "who owned this before it died".
func (rt *Router) candidatesFor(key uint64) (usable, ranked []*member) {
	ranked = rt.ring.ranked(key, make([]*member, 0, len(rt.members)))
	now := time.Now()
	usable = make([]*member, 0, len(ranked))
	var grays []*member
	for _, m := range ranked {
		if !m.usable(now) {
			continue
		}
		if m.gray.Load() {
			grays = append(grays, m)
			continue
		}
		usable = append(usable, m)
	}
	usable = append(usable, grays...)
	return usable, ranked
}

// MemberHealth is one member's state in the router /healthz body.
type MemberHealth struct {
	Node     string `json:"node"`
	State    string `json:"state"`
	Breaker  string `json:"breaker"` // closed | open
	Grammars int    `json:"grammars"`
	LastErr  string `json:"last_error,omitempty"`
}

// RouterHealth is the router /healthz body: per-member states, the
// registry-convergence verdict across ready members, and the sticky
// session placements (the chaos tests read Sessions to find which node
// to kill).
type RouterHealth struct {
	Status            string            `json:"status"` // ok | degraded | down
	Nodes             []MemberHealth    `json:"nodes"`
	ReadyNodes        int               `json:"ready_nodes"`
	RegistryConverged bool              `json:"registry_converged"`
	Sessions          map[string]string `json:"sessions,omitempty"` // grammar/id → owner node
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	h := RouterHealth{RegistryConverged: rt.registryConverged()}
	for _, m := range rt.members {
		mh := MemberHealth{Node: m.name, State: stateName(m.state.Load()), Breaker: "closed"}
		if m.br.open(now) {
			mh.Breaker = "open"
		}
		if gs := m.grammars.Load(); gs != nil {
			mh.Grammars = len(*gs)
		}
		if e := m.lastErr.Load(); e != nil {
			mh.LastErr = *e
		}
		if mh.State == "ready" {
			h.ReadyNodes++
		}
		h.Nodes = append(h.Nodes, mh)
	}
	sort.Slice(h.Nodes, func(i, j int) bool { return h.Nodes[i].Node < h.Nodes[j].Node })
	h.Sessions = rt.sessions.placements()
	switch {
	case h.ReadyNodes == len(rt.members) && h.RegistryConverged:
		h.Status = "ok"
	case h.ReadyNodes > 0:
		h.Status = "degraded"
	default:
		h.Status = "down"
	}
	code := http.StatusOK
	if h.ReadyNodes == 0 {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(h)
}

// handleGrammars proxies the fleet registry view: the first ready
// member answers for everyone (divergence, if any, is a /healthz
// matter — this endpoint is "what can I parse").
func (rt *Router) handleGrammars(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	for _, m := range rt.members {
		if !m.usable(now) {
			continue
		}
		status, hdr, body, err := rt.roundTrip(r.Context(), m, http.MethodGet, "/v1/grammars", nil, "")
		if err != nil {
			// A dead client context (or the router's own body cap) is not
			// evidence against the node — charging it would let one expired
			// request mark the whole fleet down as the loop iterates.
			if r.Context().Err() == nil && !errors.Is(err, errResponseTooLarge) {
				m.noteForwardFailure(time.Now(), true)
			}
			continue
		}
		m.br.success()
		relay(w, status, hdr, body)
		return
	}
	httpError(w, http.StatusServiceUnavailable, "no fleet member is ready")
}

// timeoutCtx is the outbound-call deadline helper.
func timeoutCtx(d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), d)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
