package fleet

import (
	"bytes"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// TestClampRetryAfter pins the clamp table: everything a downstream
// node can put in Retry-After maps into [1, 60].
func TestClampRetryAfter(t *testing.T) {
	cases := map[string]string{
		"30":      "30",
		"1":       "1",
		"60":      "60",
		"0":       "1",
		"-5":      "1",
		"600":     "60",
		"garbage": "1",
		" 45 ":    "45",
		"":        "1",
	}
	for in, want := range cases {
		if got := clampRetryAfter(in); got != want {
			t.Errorf("clampRetryAfter(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestRelayedRetryAfterClamped: a node answering a relayed status with
// an hour-long Retry-After reaches the client clamped to 60 — the stub
// regression for the relay-side clamp. 410 is used because the router
// relays it verbatim without retrying.
func TestRelayedRetryAfterClamped(t *testing.T) {
	stub := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3600")
		w.WriteHeader(http.StatusGone)
		io.WriteString(w, `{"error":"wrong machine"}`)
	})
	_, ts := stubRouter(t, Options{}, stub)

	resp, err := http.Post(ts.URL+"/v1/parse/JSON", "application/octet-stream", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("status %d, want 410 relayed", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "60" {
		t.Fatalf("relayed Retry-After %q, want clamped to 60", got)
	}
}

// TestShed429NeverTripsBreakerOrGray: a node shedding every request
// with 429 is healthy by definition — the regression pins that sheds
// open no breaker, record no forward errors, and feed no latency
// samples into the gray detector.
func TestShed429NeverTripsBreakerOrGray(t *testing.T) {
	stub := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	rt, ts := stubRouter(t, Options{MaxRetries: 1, BreakerThreshold: 2}, stub)

	for i := 0; i < 4; i++ {
		resp, err := http.Post(ts.URL+"/v1/parse/JSON", "application/octet-stream", bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("request %d: status %d, want 502 after absorbing the 429s", i, resp.StatusCode)
		}
	}
	m := rt.members[0]
	if m.br.open(time.Now()) {
		t.Fatal("429 sheds opened the breaker")
	}
	if got := m.forwardErrs.Value(); got != 0 {
		t.Fatalf("fleet_node_forward_errors_total = %d after pure 429s, want 0", got)
	}
	if got := m.latency.Samples(); got != 0 {
		t.Fatalf("latency EWMA took %d samples from 429s, want 0", got)
	}
	rt.refreshGray()
	if m.gray.Load() {
		t.Fatal("429 sheds marked the node gray")
	}
}

// TestGrayDemotionOrdering is the whitebox demotion test: a ready
// member whose latency EWMA exceeds GrayFactor × the fleet minimum
// drops behind every healthy member in candidatesFor — stable within
// each class — stays usable, and recovers when its latency does.
func TestGrayDemotionOrdering(t *testing.T) {
	fast1 := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) { ok200(w) })
	fast2 := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) { ok200(w) })
	slow := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) { ok200(w) })
	rt, _ := stubRouter(t, Options{GrayMinSamples: 4, GrayFactor: 3}, fast1, fast2, slow)

	var slowM *member
	for _, m := range rt.members {
		if "http://"+m.name == slow.ts.URL {
			slowM = m
		}
	}
	for _, m := range rt.members {
		for i := 0; i < 8; i++ {
			if m == slowM {
				m.latency.Observe(100e6) // 100ms
			} else {
				m.latency.Observe(10e6) // 10ms
			}
		}
	}
	rt.refreshGray()
	if !slowM.gray.Load() {
		t.Fatal("10× slower member not marked gray")
	}
	for _, m := range rt.members {
		if m != slowM && m.gray.Load() {
			t.Fatalf("healthy member %s marked gray", m.name)
		}
	}
	key := fnv64(rt.fingerprintFor("JSON"))
	usable, _ := rt.candidatesFor(key)
	if len(usable) != 3 {
		t.Fatalf("gray demotion removed capacity: %d usable members, want 3", len(usable))
	}
	if usable[len(usable)-1] != slowM {
		t.Fatal("gray member not demoted to last place")
	}

	// Recovery: the EWMA converges back down and the next probe round
	// un-demotes.
	for i := 0; i < 64; i++ {
		slowM.latency.Observe(10e6)
	}
	rt.refreshGray()
	if slowM.gray.Load() {
		t.Fatal("member still gray after its latency recovered")
	}
}

// slowSwitch lets a stub sleep only while armed — hedge tests flip it
// per phase.
type slowSwitch struct {
	delay atomic.Int64 // ns; 0 = fast
}

func (s *slowSwitch) maybeSleep() {
	if d := s.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// hedgeFleet builds a two-stub fleet with hedging armed and returns
// (router, client server, primary stub switch, backup stub switch,
// primary member, backup member) where "primary" is the ring's
// first-ranked member for grammar JSON.
func hedgeFleet(t *testing.T) (*Router, string, *slowSwitch, *slowSwitch, *member, *member) {
	t.Helper()
	swA, swB := &slowSwitch{}, &slowSwitch{}
	mkStub := func(sw *slowSwitch, marker string) *stubNode {
		return newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
			sw.maybeSleep()
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"grammar":"JSON","accepted":true,"node":"`+marker+`"}`)
		})
	}
	a, b := mkStub(swA, "a"), mkStub(swB, "b")
	rt, ts := stubRouter(t, Options{Hedge: true, MaxRetries: 1}, a, b)

	key := fnv64(rt.fingerprintFor("JSON"))
	usable, _ := rt.candidatesFor(key)
	if len(usable) != 2 {
		t.Fatalf("fleet not fully ready: %d usable", len(usable))
	}
	primary, backup := usable[0], usable[1]
	swP, swB2 := swA, swB
	if "http://"+primary.name == b.ts.URL {
		swP, swB2 = swB, swA
	}
	return rt, ts.URL, swP, swB2, primary, backup
}

// TestHedgeWinsOnSlowPrimary: when the primary sits on a request past
// the hedge delay, the hedge leg answers, the client gets the backup's
// response, the win is counted, and the canceled primary leg charges
// nothing.
func TestHedgeWinsOnSlowPrimary(t *testing.T) {
	rt, base, swP, _, primary, backup := hedgeFleet(t)
	swP.delay.Store(int64(400 * time.Millisecond))

	t0 := time.Now()
	resp, err := http.Post(base+"/v1/parse/JSON", "application/octet-stream", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 from the hedge leg", resp.StatusCode)
	}
	if elapsed := time.Since(t0); elapsed >= 400*time.Millisecond {
		t.Fatalf("answer took %v — the hedge never rescued the request", elapsed)
	}
	if !bytes.Contains(body, []byte(`"node":"`)) {
		t.Fatalf("unexpected body %s", body)
	}
	if got := rt.m.hedgeTotal[hedgeWin].Value(); got != 1 {
		t.Fatalf("hedge_total{outcome=win} = %d, want 1", got)
	}
	if primary.br.open(time.Now()) || primary.forwardErrs.Value() != 0 {
		t.Fatal("canceled primary leg was charged as a failure")
	}
	_ = backup
}

// TestHedgeLossCancelsBackup: the hedge fires but the primary still
// answers first — the loss is counted and the canceled backup leg is
// never charged.
func TestHedgeLossCancelsBackup(t *testing.T) {
	rt, base, swP, swB, _, backup := hedgeFleet(t)
	swP.delay.Store(int64(120 * time.Millisecond)) // past the 50ms default hedge delay
	swB.delay.Store(int64(2 * time.Second))        // hedge leg can never win

	resp, err := http.Post(base+"/v1/parse/JSON", "application/octet-stream", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 from the primary", resp.StatusCode)
	}
	if got := rt.m.hedgeTotal[hedgeLoss].Value(); got != 1 {
		t.Fatalf("hedge_total{outcome=loss} = %d, want 1", got)
	}
	if backup.br.open(time.Now()) || backup.forwardErrs.Value() != 0 {
		t.Fatal("canceled backup leg was charged as a failure")
	}
}

// TestHedgeQuietWhenPrimaryFast: a healthy fast primary never fires
// the hedge — no duplicate work, no hedge series movement.
func TestHedgeQuietWhenPrimaryFast(t *testing.T) {
	rt, base, _, _, primary, backup := hedgeFleet(t)
	for i := 0; i < 5; i++ {
		resp, err := http.Post(base+"/v1/parse/JSON", "application/octet-stream", bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	for _, o := range hedgeOutcomes {
		if got := rt.m.hedgeTotal[o].Value(); got != 0 {
			t.Fatalf("hedge_total{outcome=%s} = %d with a fast primary, want 0", o, got)
		}
	}
	if primary.forwards.Value() != 5 || backup.forwards.Value() != 0 {
		t.Fatalf("forwards split %d/%d, want 5/0 (no duplicate work)",
			primary.forwards.Value(), backup.forwards.Value())
	}
}
