package fleet

import (
	"testing"
	"time"

	"aspen/internal/telemetry"
)

func testMembers(n int) []*member {
	reg := telemetry.NewRegistry()
	names := []string{"alpha:1", "bravo:2", "charlie:3", "delta:4", "echo:5"}
	ms := make([]*member, 0, n)
	for i := 0; i < n; i++ {
		ms = append(ms, newMember(names[i%len(names)], reg))
	}
	return ms
}

// TestRingRankedCoversAllMembers pins that ranked() is a full
// preference order: every member appears exactly once, owner first.
func TestRingRankedCoversAllMembers(t *testing.T) {
	ms := testMembers(5)
	r := newRing(ms, DefaultVNodes)
	for _, key := range []uint64{0, 1, fnv64("JSON"), fnv64("XML", "sess-42"), ^uint64(0)} {
		got := r.ranked(key, nil)
		if len(got) != len(ms) {
			t.Fatalf("ranked(%d) returned %d members, want %d", key, len(got), len(ms))
		}
		seen := map[*member]bool{}
		for _, m := range got {
			if seen[m] {
				t.Fatalf("ranked(%d) repeated member %s", key, m.name)
			}
			seen[m] = true
		}
	}
}

// TestRingPlacementStable pins the consistent-hashing property the
// fleet depends on: rankings are deterministic, and the owner for a
// key never changes merely because other keys exist.
func TestRingPlacementStable(t *testing.T) {
	ms := testMembers(5)
	r1 := newRing(ms, DefaultVNodes)
	r2 := newRing(ms, DefaultVNodes)
	for i := 0; i < 100; i++ {
		key := fnv64("grammar", string(rune('a'+i%26)), "x")
		a, b := r1.ranked(key, nil), r2.ranked(key, nil)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("ranking for key %d differs between identical rings at position %d", key, j)
			}
		}
	}
}

// TestRingSpreadsKeys pins that distinct sessions of one grammar land
// on different owners (the point of folding the session ID into the
// key).
func TestRingSpreadsKeys(t *testing.T) {
	ms := testMembers(5)
	r := newRing(ms, DefaultVNodes)
	owners := map[*member]int{}
	for i := 0; i < 200; i++ {
		key := fnv64("fp-json", "session-"+string(rune('a'+i%26))+string(rune('0'+i%10)))
		owners[r.ranked(key, nil)[0]]++
	}
	if len(owners) < 4 {
		t.Fatalf("200 sessions landed on only %d/5 members: %v", len(owners), owners)
	}
}

// TestBreakerStateMachine pins closed → open at threshold → half-open
// single probe after cooldown → closed on probe success / re-armed on
// probe failure.
func TestBreakerStateMachine(t *testing.T) {
	b := breaker{threshold: 3, cooldown: time.Minute}
	now := time.Now()

	for i := 0; i < 3; i++ {
		if !b.allow(now) {
			t.Fatalf("breaker refused while closed (failure %d)", i)
		}
		opened := b.failure(now)
		if want := i == 2; opened != want {
			t.Fatalf("failure %d opened=%v, want %v", i, opened, want)
		}
	}
	if b.allow(now) {
		t.Fatal("breaker allowed a forward while open")
	}
	if !b.open(now) {
		t.Fatal("open() = false right after opening")
	}

	// After the cooldown: exactly one probe goes through.
	later := now.Add(2 * time.Minute)
	if !b.allow(later) {
		t.Fatal("breaker refused the half-open probe")
	}
	if b.allow(later) {
		t.Fatal("breaker allowed a second concurrent half-open probe")
	}
	// Probe fails: re-armed, still refusing.
	if opened := b.failure(later); opened {
		t.Fatal("failed probe counted as a fresh open transition")
	}
	if b.allow(later) {
		t.Fatal("breaker allowed traffic right after a failed probe")
	}
	// Next probe succeeds: closed, traffic flows.
	again := later.Add(2 * time.Minute)
	if !b.allow(again) {
		t.Fatal("breaker refused the second half-open probe")
	}
	b.success()
	if !b.allow(again) || b.open(again) {
		t.Fatal("breaker still refusing after a successful probe")
	}
}

// TestFnv64PartSeparation pins that the part separator keeps composite
// keys unambiguous.
func TestFnv64PartSeparation(t *testing.T) {
	if fnv64("ab", "c") == fnv64("a", "bc") {
		t.Fatal(`fnv64("ab","c") == fnv64("a","bc"): parts not separated`)
	}
	if fnv64("x") == fnv64("x", "") {
		t.Fatal(`fnv64("x") == fnv64("x",""): empty part indistinct`)
	}
}
