package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"aspen/internal/telemetry"
)

// traceHeader mirrors serve.TraceHeader without importing the server:
// the router assigns (or reuses) the ID pre-admission and forwards it
// on every outbound hop, so one trace ID joins the router's flight
// record to the node's.
const traceHeader = "X-Aspen-Trace"

// Outcome vocabulary for router flight records.
const (
	outcomeRelayed  = "relayed"  // downstream answer relayed verbatim
	outcomeDenied   = "denied"   // router-level refusal (413, no usable node)
	outcomeFailover = "failover" // relayed, after moving the session
	outcomeHedged   = "hedged"   // relayed, from the hedge leg (primary was slow)
	outcomeTimeout  = "timeout"  // request deadline exhausted inside the router
)

// span is one router request's trace context (the router-tier analogue
// of serve's span: pick/forward/retry/failover attribution).
type span struct {
	id      uint64
	start   time.Time
	grammar string
	outcome string
	status  int
	bytes   int64
	retries int32
	phases  [telemetry.MaxPhases]int64
}

func (sp *span) addSince(ph int, t0 time.Time) {
	sp.phases[ph] += time.Since(t0).Nanoseconds()
}

// nextTraceID is a splitmix64 walk from a time-seeded base (same
// construction as the node side).
func (rt *Router) nextTraceID() uint64 {
	z := rt.traceBase + rt.idSeq.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// beginSpan opens the request's span: an inbound X-Aspen-Trace is
// reused (the client or an upstream proxy already traced this
// request), else a fresh ID is minted — before any routing, so even a
// 503 "no usable node" carries it.
func (rt *Router) beginSpan(w http.ResponseWriter, r *http.Request) *span {
	id := uint64(0)
	if h := r.Header.Get(traceHeader); h != "" {
		if v, ok := telemetry.ParseTraceID(h); ok && v != 0 {
			id = v
		}
	}
	if id == 0 {
		id = rt.nextTraceID()
	}
	sp := &span{id: id, start: time.Now(), status: http.StatusOK, outcome: outcomeRelayed}
	w.Header().Set(traceHeader, telemetry.TraceIDString(id))
	return sp
}

// recordSpan folds the span into the phase histograms and the flight
// recorder.
func (rt *Router) recordSpan(sp *span) {
	for i := 0; i < numPhases; i++ {
		if sp.phases[i] > 0 {
			rt.m.phaseNS[i].ObserveInt(sp.phases[i])
		}
	}
	rt.flight.Record(&telemetry.RequestRecord{
		TraceID: sp.id,
		UnixNS:  sp.start.UnixNano(),
		Grammar: sp.grammar,
		Outcome: sp.outcome,
		Status:  sp.status,
		Bytes:   sp.bytes,
		Retries: sp.retries,
		TotalNS: time.Since(sp.start).Nanoseconds(),
		Phases:  sp.phases,
	})
}

// roundTrip performs one forward to a member: one HTTP call, body
// re-sendable (the caller holds the buffered bytes), answer fully
// read. The member's forward counter ticks here; failure accounting is
// the caller's (it knows whether the status is retryable).
func (rt *Router) roundTrip(ctx context.Context, m *member, method, pathAndQuery string, body []byte, traceID string) (int, http.Header, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, m.base+pathAndQuery, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	if traceID != "" {
		req.Header.Set(traceHeader, traceID)
	}
	m.forwards.Inc()
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, rt.opt.MaxBodyBytes+1))
	if err != nil {
		return 0, nil, nil, err
	}
	if int64(len(b)) > rt.opt.MaxBodyBytes {
		// Relaying a silently truncated body under the original status
		// would hand the client a corrupt payload with no error signal;
		// fail the round trip instead. Not a node-health event — the node
		// answered, the router's cap is just smaller.
		return 0, nil, nil, errResponseTooLarge
	}
	return resp.StatusCode, resp.Header, b, nil
}

// errResponseTooLarge marks a downstream answer bigger than
// MaxBodyBytes; callers surface it as a 502 without charging the
// node's breaker.
var errResponseTooLarge = errors.New("downstream response exceeds the configured body cap")

// relay writes a downstream answer to the client verbatim (selected
// headers; the router's own X-Aspen-Trace stamp is already set and the
// node echoes the same ID anyway). Retry-After is the one header the
// router does not trust: it is clamped, not copied.
func relay(w http.ResponseWriter, status int, hdr http.Header, body []byte) {
	for _, k := range []string{"Content-Type", "X-Aspen-Session-Bytes", "X-Aspen-Machine"} {
		if v := hdr.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	if v := hdr.Get("Retry-After"); v != "" {
		w.Header().Set("Retry-After", clampRetryAfter(v))
	}
	w.WriteHeader(status)
	w.Write(body)
}

// clampRetryAfter bounds a downstream Retry-After to [1, 60] seconds
// before it reaches a client: a misbehaving node must not be able to
// park the fleet's clients for an hour, nor (via zero or garbage)
// invite an immediate stampede.
func clampRetryAfter(v string) string {
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 1 {
		return "1"
	}
	if secs > 60 {
		return "60"
	}
	return strconv.Itoa(secs)
}

// retryableStatus reports whether a downstream status means "this node
// cannot take the work" (and the breaker should hear about it). 429 is
// deliberately absent: backpressure is a healthy node shedding load.
func retryableStatus(status int) bool {
	return status == http.StatusBadGateway || status == http.StatusServiceUnavailable ||
		status == http.StatusGatewayTimeout
}

// retryAfter extracts a downstream Retry-After (seconds form) as a
// duration, 0 when absent or unparseable. The same distrust as the
// outbound clamp applies inbound: a node asking for more than 60 s
// would otherwise park the router's retry loop until the request
// deadline killed it.
func retryAfter(hdr http.Header) time.Duration {
	v := hdr.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	if secs > 60 {
		secs = 60
	}
	return time.Duration(secs) * time.Second
}

// backoff sleeps the attempt's exponential backoff + jitter (or the
// downstream-requested delay when longer), bounded by ctx. The time
// spent is retry overhead — the caller attributes it to phaseRetry.
// Reports false when the context expired instead.
func (rt *Router) backoff(ctx context.Context, attempt int, requested time.Duration) bool {
	d := rt.opt.RetryBackoff << uint(attempt)
	if max := 2 * time.Second; d > max {
		d = max
	}
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	if requested > d {
		d = requested
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// readBody buffers the request body (bounded), so retries and
// failover re-sends replay identical bytes.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request, sp *span) ([]byte, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.opt.MaxBodyBytes+1))
	if err != nil {
		sp.status, sp.outcome = http.StatusBadRequest, outcomeDenied
		httpError(w, http.StatusBadRequest, "reading request body: %v", err)
		return nil, false
	}
	if int64(len(body)) > rt.opt.MaxBodyBytes {
		sp.status, sp.outcome = http.StatusRequestEntityTooLarge, outcomeDenied
		httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", rt.opt.MaxBodyBytes)
		return nil, false
	}
	sp.bytes = int64(len(body))
	return body, true
}

// handleParse is the data-plane entry: buffer the body, then the
// stateless path for plain parses or the sticky/failover path for
// durable sessions.
func (rt *Router) handleParse(w http.ResponseWriter, r *http.Request) {
	sp := rt.beginSpan(w, r)
	defer rt.recordSpan(sp)
	sp.grammar = r.PathValue("grammar")
	rt.m.requests.Inc()

	body, ok := rt.readBody(w, r, sp)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.opt.RequestTimeout)
	defer cancel()

	if id := r.URL.Query().Get("session"); id != "" {
		rt.serveSession(ctx, w, sp, sp.grammar, id, r.URL.RawQuery, body)
		return
	}
	rt.forwardParse(ctx, w, sp, body, r.URL.RawQuery)
}

// forwardParse is the stateless forward loop: rank by grammar
// identity, try the best usable node, rotate on retryable failures
// with backoff+jitter, honor downstream Retry-After, relay everything
// else verbatim.
func (rt *Router) forwardParse(ctx context.Context, w http.ResponseWriter, sp *span, body []byte, rawQuery string) {
	path := "/v1/parse/" + sp.grammar
	if rawQuery != "" {
		path += "?" + rawQuery
	}
	key := fnv64(rt.fingerprintFor(sp.grammar))
	trace := telemetry.TraceIDString(sp.id)

	tried := make(map[*member]bool)
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		target := rt.pickTarget(key, tried)
		ph := phasePick
		if attempt > 0 {
			ph = phaseRetry
		}
		sp.addSince(ph, t0)
		if target == nil {
			sp.status, sp.outcome = http.StatusServiceUnavailable, outcomeDenied
			rt.m.noNodes.Inc()
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "no usable fleet member for %q", sp.grammar)
			return
		}

		t0 = time.Now()
		winner := target
		var status int
		var hdr http.Header
		var respBody []byte
		var legNS int64
		var err error
		if rt.opt.Hedge {
			winner, status, hdr, respBody, legNS, err =
				rt.hedgedForward(ctx, target, rt.pickBackup(key, tried, target), path, body, trace, tried)
		} else {
			status, hdr, respBody, err = rt.roundTrip(ctx, target, http.MethodPost, path, body, trace)
			legNS = time.Since(t0).Nanoseconds()
		}
		sp.addSince(phaseForward, t0)

		wait := time.Duration(0)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				sp.status, sp.outcome = http.StatusGatewayTimeout, outcomeTimeout
				httpError(w, http.StatusGatewayTimeout, "request deadline exhausted forwarding to %s", winner.name)
				return
			}
			if errors.Is(err, errResponseTooLarge) {
				sp.status, sp.outcome = http.StatusBadGateway, outcomeDenied
				httpError(w, http.StatusBadGateway, "node %s answered more than %d bytes", winner.name, rt.opt.MaxBodyBytes)
				return
			}
			winner.noteForwardFailure(time.Now(), true)
			tried[winner] = true
		case status == http.StatusTooManyRequests:
			// Backpressure: the node is healthy, the queue is full. Wait as
			// asked and re-offer (the same node stays eligible). No latency
			// observation either — a shed answers instantly, and letting it
			// into the EWMA would make an overloaded node look fast.
			winner.br.success()
			wait = retryAfter(hdr)
		case retryableStatus(status):
			winner.noteForwardFailure(time.Now(), false)
			tried[winner] = true
			wait = retryAfter(hdr)
		default:
			winner.br.success()
			if status == http.StatusOK {
				// The gray detector compares members on work they all do:
				// successful parses only, measured on the winning leg alone.
				winner.latency.Observe(float64(legNS))
			}
			if winner != target {
				sp.outcome = outcomeHedged
			}
			sp.status = status
			relay(w, status, hdr, respBody)
			return
		}

		if attempt >= rt.opt.MaxRetries {
			sp.status, sp.outcome = http.StatusBadGateway, outcomeDenied
			httpError(w, http.StatusBadGateway, "exhausted %d forward attempts for %q", attempt+1, sp.grammar)
			return
		}
		rt.m.retries.Inc()
		sp.retries++
		t0 = time.Now()
		ok := rt.backoff(ctx, attempt, wait)
		sp.addSince(phaseRetry, t0)
		if !ok {
			sp.status, sp.outcome = http.StatusGatewayTimeout, outcomeTimeout
			httpError(w, http.StatusGatewayTimeout, "request deadline exhausted retrying %q", sp.grammar)
			return
		}
	}
}

// pickTarget returns the best-ranked usable member not yet tried this
// request (falling back to the best usable one even if tried — a 429
// round may have freed its queue).
func (rt *Router) pickTarget(key uint64, tried map[*member]bool) *member {
	usable, _ := rt.candidatesFor(key)
	for _, m := range usable {
		if !tried[m] {
			return m
		}
	}
	if len(usable) > 0 {
		return usable[0]
	}
	return nil
}

// AdminNodeResult is one member's verdict in an admin fanout.
type AdminNodeResult struct {
	Node   string `json:"node"`
	Status int    `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
	Body   string `json:"body,omitempty"`
}

// AdminFanoutResponse is the router's admin-mutation answer: per-node
// outcomes. 200 iff every member journaled the mutation; any miss is a
// 502 with the detail — and a divergence the prober will keep
// surfacing on /healthz until the lagging node catches up or is
// mutated again.
type AdminFanoutResponse struct {
	OK    bool              `json:"ok"`
	Nodes []AdminNodeResult `json:"nodes"`
}

// handleAdmin fans a control-plane mutation out to every member —
// including unready ones (a draining node still journals, and skipping
// it would guarantee divergence on restart).
func (rt *Router) handleAdmin(w http.ResponseWriter, r *http.Request) {
	sp := rt.beginSpan(w, r)
	defer rt.recordSpan(sp)
	sp.grammar = "-admin-"
	body, ok := rt.readBody(w, r, sp)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.opt.RequestTimeout)
	defer cancel()
	trace := telemetry.TraceIDString(sp.id)

	resp := AdminFanoutResponse{OK: true}
	results := make([]AdminNodeResult, len(rt.members))
	var wg sync.WaitGroup
	for i, m := range rt.members {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			status, _, b, err := rt.roundTrip(ctx, m, http.MethodPost, "/v1/admin/grammars", body, trace)
			res := AdminNodeResult{Node: m.name, Status: status}
			if err != nil {
				res.Error = err.Error()
			} else if status != http.StatusOK {
				res.Body = string(b)
			}
			results[i] = res
		}(i, m)
	}
	wg.Wait()
	for _, res := range results {
		if res.Error != "" || res.Status != http.StatusOK {
			resp.OK = false
		}
		resp.Nodes = append(resp.Nodes, res)
	}
	code := http.StatusOK
	if !resp.OK {
		code = http.StatusBadGateway
	}
	// Mutations change placement identities: refresh the registry view
	// now instead of waiting out a probe interval.
	rt.probeGrammars()
	sp.status = code
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(resp)
}

// probeGrammars refreshes every member's registry view (used right
// after an admin fanout; the periodic prober does this too).
func (rt *Router) probeGrammars() {
	var wg sync.WaitGroup
	for _, m := range rt.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			if gs, err := fetchGrammars(rt.client, m.base, rt.opt.ProbeTimeout); err == nil {
				m.grammars.Store(&gs)
			}
		}(m)
	}
	wg.Wait()
	if rt.registryConverged() {
		rt.m.diverged.SetInt(0)
	} else {
		rt.m.diverged.SetInt(1)
	}
}
