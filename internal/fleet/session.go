package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/url"
	"sync"
	"time"

	"aspen/internal/telemetry"
)

// Durable-session routing. A session is sticky: every chunk goes to
// the node that owns it, because only that node holds the stream's
// durable checkpoint. The router tracks each session's owner and a
// cached copy of its latest sealed checkpoint image; when the owner
// dies mid-stream, the image ships to the next ranked node (PUT
// /v1/sessions/{g}/{id}/checkpoint) and the unacknowledged chunk is
// re-sent there.
//
// The cache-update ordering is the correctness core: after the owner
// acknowledges a chunk (200 partial), the router fetches the owner's
// fresh checkpoint BEFORE relaying the ack to the client. So at every
// instant, the cached image covers exactly the bytes any client
// believes are durable — the cache is the acked prefix, authoritative
// over whatever a node's disk holds. If the fetch fails (the owner
// died in the window between persisting and answering the fetch), the
// ack is NOT relayed; the owner now holds state AHEAD of the acked
// prefix, so the session is marked dirty and no chunk is re-sent to
// any node until that node has been reset to the cached image (PUT),
// or to nothing (DELETE) when no bytes were ever acknowledged.
// Re-sending without the reset would append the chunk on top of a
// checkpoint that already contains it — silent double-apply. The
// dirty mark lives on the session entry, not the request, so a client
// retry minutes later still goes through the reset.
//
// A 200 on a non-final chunk is NOT always an ack: a document error
// concludes the session early with 200 + Error set and the node's
// checkpoint already deleted. The router classifies by the response
// body's "partial" field — only a partial:true answer is an ack worth
// a checkpoint fetch; anything else is a conclusion, relayed verbatim.
//
// Wrong-machine (410) and torn-image (422) answers from a replacement
// PUT relay to the client non-retryable: they mean the fleet's grammar
// builds diverged, which retrying cannot fix.

// session is one durable stream's routing state.
type session struct {
	mu    sync.Mutex // serializes chunks (concurrent chunk = 409, like the node)
	owner *member    // current sticky owner, nil until first placed
	image []byte     // latest fetched checkpoint image, nil before the first ack
	// dirty marks the owner's durable state as possibly ahead of image:
	// chunk bytes were sent but the outcome never reached the client (a
	// transport error mid-forward, or an ack voided by a failed
	// checkpoint fetch). The owner must be reset to the cached image
	// before any re-send, or the un-acked chunk could apply twice.
	dirty bool
	// lastUnixNS is when a request last touched this session (guarded
	// by the table mutex, not mu); the idle sweeper reads it.
	lastUnixNS int64
}

// sessionTable tracks live sessions by "grammar/id".
type sessionTable struct {
	mu sync.Mutex
	s  map[string]*session
	rm *routerMetrics
}

func (t *sessionTable) init(rm *routerMetrics) {
	t.s = make(map[string]*session)
	t.rm = rm
}

// acquire returns the session entry, creating it on first use and
// refreshing its idle clock.
func (t *sessionTable) acquire(key string, now time.Time) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	se := t.s[key]
	if se == nil {
		se = &session{}
		t.s[key] = se
		t.rm.sessions.SetInt(int64(len(t.s)))
	}
	se.lastUnixNS = now.UnixNano()
	return se
}

// drop forgets a concluded session.
func (t *sessionTable) drop(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.s, key)
	t.rm.sessions.SetInt(int64(len(t.s)))
}

// sweep reaps sessions idle past ttl: abandoned streams, and sessions
// that concluded via relays the router does not recognize as final,
// would otherwise pin their cached images (up to MaxBodyBytes each)
// forever. An in-flight session (mu held) is never reaped. The
// node-side durable checkpoint is untouched, so a returning client
// still resumes as long as its ring-placed owner is alive.
func (t *sessionTable) sweep(now time.Time, ttl time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cutoff := now.Add(-ttl).UnixNano()
	for k, se := range t.s {
		if se.lastUnixNS > cutoff || !se.mu.TryLock() {
			continue
		}
		se.mu.Unlock()
		delete(t.s, k)
	}
	t.rm.sessions.SetInt(int64(len(t.s)))
}

// placements snapshots session → owner-node for /healthz (the chaos
// harness reads this to decide which node to kill).
func (t *sessionTable) placements() map[string]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.s) == 0 {
		return nil
	}
	out := make(map[string]string, len(t.s))
	for k, se := range t.s {
		if o := se.owner; o != nil {
			out[k] = o.name
		}
	}
	return out
}

// isPartialAck reports whether a 200 answer to a non-final chunk is a
// partial acknowledgment (checkpoint persisted, "partial":true in the
// body) rather than an early conclusion — a document error ends the
// session with 200 + Error and no remaining checkpoint, and mistaking
// it for an ack would send the router chasing a checkpoint that is
// legitimately gone.
func isPartialAck(body []byte) bool {
	var pr struct {
		Partial bool `json:"partial"`
	}
	return json.Unmarshal(body, &pr) == nil && pr.Partial
}

// concludesSession reports whether a relayed answer ends the session
// on the node: the final-chunk 200, wrong-build 410, and
// depth-overflow 422 all leave no durable state behind.
func concludesSession(status int, final bool) bool {
	switch status {
	case http.StatusOK:
		return final
	case http.StatusGone, http.StatusUnprocessableEntity:
		return true
	}
	return false
}

// serveSession routes one durable-session chunk: sticky forward to the
// owner, with checkpoint-fetch-before-ack and failover when the owner
// is gone.
func (rt *Router) serveSession(ctx context.Context, w http.ResponseWriter, sp *span, grammar, id, rawQuery string, body []byte) {
	skey := grammar + "/" + id
	se := rt.sessions.acquire(skey, time.Now())
	if !se.mu.TryLock() {
		sp.status, sp.outcome = http.StatusConflict, outcomeDenied
		httpError(w, http.StatusConflict, "session %q has a chunk in flight", id)
		return
	}
	defer se.mu.Unlock()

	key := fnv64(rt.fingerprintFor(grammar), id)
	path := "/v1/parse/" + grammar + "?" + rawQuery
	ckptPath := "/v1/sessions/" + grammar + "/" + url.PathEscape(id) + "/checkpoint"
	final := isFinal(rawQuery)
	trace := telemetry.TraceIDString(sp.id)
	failedOver := false

	tried := make(map[*member]bool)
	for attempt := 0; ; attempt++ {
		// Resolve the owner. A dead owner (or none yet) means placing on
		// the best usable candidate — with a checkpoint ship when the
		// session has history. A dirty owner re-places too: placeSession
		// is where the reset-to-cached-image happens.
		t0 := time.Now()
		owner := se.owner
		if owner == nil || !owner.usable(time.Now()) || tried[owner] || se.dirty {
			prev := se.owner
			repl, done := rt.placeSession(ctx, w, sp, se, skey, key, ckptPath, tried, trace)
			if done {
				return // placeSession already answered (non-retryable or no nodes)
			}
			if prev != nil && repl != prev {
				failedOver = true
			}
			se.owner = repl
			owner = repl
		}
		ph := phasePick
		if attempt > 0 {
			ph = phaseRetry
		}
		sp.addSince(ph, t0)

		t0 = time.Now()
		status, hdr, respBody, err := rt.roundTrip(ctx, owner, http.MethodPost, path, body, trace)
		sp.addSince(phaseForward, t0)

		wait := time.Duration(0)
		switch {
		case err != nil:
			// The chunk may have landed (the node can persist and then die
			// before the response arrives): dirty until a reset proves
			// otherwise.
			se.dirty = true
			if ctx.Err() != nil {
				sp.status, sp.outcome = http.StatusGatewayTimeout, outcomeTimeout
				httpError(w, http.StatusGatewayTimeout, "request deadline exhausted forwarding session %q", id)
				return
			}
			if errors.Is(err, errResponseTooLarge) {
				sp.status, sp.outcome = http.StatusBadGateway, outcomeDenied
				httpError(w, http.StatusBadGateway, "node %s answered more than %d bytes", owner.name, rt.opt.MaxBodyBytes)
				return
			}
			owner.noteForwardFailure(time.Now(), true)
			tried[owner] = true
		case status == http.StatusTooManyRequests:
			owner.br.success()
			wait = retryAfter(hdr)
		case retryableStatus(status):
			owner.noteForwardFailure(time.Now(), false)
			tried[owner] = true
			wait = retryAfter(hdr)
		case status == http.StatusOK && !final && !isPartialAck(respBody):
			// Early conclusion: a document error on a non-final chunk
			// answers 200 with Error set, the node's checkpoint already
			// deleted. The healthy owner answered definitively — relay it
			// and forget the session; fetching the (gone) checkpoint here
			// would misread this as an owner death.
			owner.br.success()
			rt.sessions.drop(skey)
			if failedOver {
				sp.outcome = outcomeFailover
			}
			sp.status = status
			relay(w, status, hdr, respBody)
			return
		case status == http.StatusOK && !final:
			// Partial ack. Fetch the owner's fresh checkpoint BEFORE the
			// client hears the ack; a failed fetch voids the ack and the
			// chunk is re-sent on a replacement (after a reset — the owner
			// holds the voided chunk durably).
			owner.br.success()
			t0 = time.Now()
			img, ferr := rt.fetchCheckpoint(ctx, owner, ckptPath, trace)
			sp.addSince(phaseForward, t0)
			if ferr != nil {
				se.dirty = true
				if ctx.Err() != nil {
					sp.status, sp.outcome = http.StatusGatewayTimeout, outcomeTimeout
					httpError(w, http.StatusGatewayTimeout, "request deadline exhausted forwarding session %q", id)
					return
				}
				var ce *checkpointError
				if errors.As(ferr, &ce) {
					// The node answered, just not with the image — an anomaly,
					// not a transport death; feed the breaker without flipping
					// a live node straight to down.
					owner.noteForwardFailure(time.Now(), false)
				} else {
					owner.noteForwardFailure(time.Now(), true)
				}
				tried[owner] = true
				break // retry loop: failover and re-send this chunk
			}
			se.image = img
			se.dirty = false
			if failedOver {
				sp.outcome = outcomeFailover
			}
			sp.status = status
			relay(w, status, hdr, respBody)
			return
		default:
			// Conclusion (200 final, 410, 422), client errors, 500: relay
			// verbatim. A concluded session leaves the table.
			owner.br.success()
			if concludesSession(status, final) {
				rt.sessions.drop(skey)
			}
			if failedOver {
				sp.outcome = outcomeFailover
			}
			sp.status = status
			relay(w, status, hdr, respBody)
			return
		}

		if attempt >= rt.opt.MaxRetries {
			sp.status, sp.outcome = http.StatusBadGateway, outcomeDenied
			httpError(w, http.StatusBadGateway, "exhausted %d forward attempts for session %q", attempt+1, id)
			return
		}
		rt.m.retries.Inc()
		sp.retries++
		t0 = time.Now()
		ok := rt.backoff(ctx, attempt, wait)
		sp.addSince(phaseRetry, t0)
		if !ok {
			sp.status, sp.outcome = http.StatusGatewayTimeout, outcomeTimeout
			httpError(w, http.StatusGatewayTimeout, "request deadline exhausted retrying session %q", id)
			return
		}
	}
}

// placeSession picks (or re-picks) a session's node, restoring the
// invariant that the chosen node's durable state equals the router's
// cached image before any chunk is re-sent. A fresh session has
// nothing to transfer; a session with history resets the target — PUT
// of the cached image (idempotent; a double failover ships the same
// sealed image again and the store overwrites), or DELETE of whatever
// un-acked checkpoint the node may hold when no bytes were ever
// acknowledged. The same node back skips the reset only when its state
// is known clean (not dirty). The cached image is authoritative: a
// node's own, possibly newer, checkpoint is exactly the un-acked state
// the reset exists to discard, so it is never fetched and adopted
// here.
//
// Returns (node, false) on success; (nil, true) when it already wrote
// the client answer (no usable nodes, deadline exhausted, or the
// replacement refused the image non-retryably: 410 wrong machine, 422
// torn — which also ends the session).
func (rt *Router) placeSession(ctx context.Context, w http.ResponseWriter, sp *span, se *session, skey string, key uint64, ckptPath string, tried map[*member]bool, trace string) (*member, bool) {
	hasHistory := se.image != nil || se.owner != nil
	t0 := time.Now()
	defer func() {
		if hasHistory {
			sp.addSince(phaseFailover, t0)
		}
	}()

	for {
		usable, _ := rt.candidatesFor(key)
		var repl *member
		for _, m := range usable {
			if !tried[m] {
				repl = m
				break
			}
		}
		if repl == nil {
			sp.status, sp.outcome = http.StatusServiceUnavailable, outcomeDenied
			rt.m.noNodes.Inc()
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "no usable fleet member for session failover")
			return nil, true
		}
		if !hasHistory || (repl == se.owner && !se.dirty) {
			return repl, false
		}

		method, payload := http.MethodPut, se.image
		if se.image == nil {
			method, payload = http.MethodDelete, nil
		}
		status, hdr, body, err := rt.roundTrip(ctx, repl, method, ckptPath, payload, trace)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				// The request's deadline died mid-failover; the node did not.
				sp.status, sp.outcome = http.StatusGatewayTimeout, outcomeTimeout
				httpError(w, http.StatusGatewayTimeout, "request deadline exhausted during session failover")
				return nil, true
			}
			if errors.Is(err, errResponseTooLarge) {
				sp.status, sp.outcome = http.StatusBadGateway, outcomeDenied
				httpError(w, http.StatusBadGateway, "node %s answered more than %d bytes", repl.name, rt.opt.MaxBodyBytes)
				return nil, true
			}
			repl.noteForwardFailure(time.Now(), true)
			tried[repl] = true
			continue
		case retryableStatus(status):
			repl.noteForwardFailure(time.Now(), false)
			tried[repl] = true
			continue
		case status == http.StatusTooManyRequests || status == http.StatusConflict:
			// Backpressure, or the node has a stale in-flight request for
			// this session: healthy, just not placeable right now.
			repl.br.success()
			tried[repl] = true
			continue
		case status == http.StatusOK:
			repl.br.success()
			se.dirty = false
			if repl != se.owner {
				rt.m.failovers.Inc()
			}
			return repl, false
		default:
			// 410 wrong machine / 422 torn / anything else: the fleet's
			// builds disagree — retrying elsewhere cannot help the client,
			// and the session cannot continue.
			repl.br.success()
			rt.sessions.drop(skey)
			sp.status, sp.outcome = status, outcomeDenied
			relay(w, status, hdr, body)
			return nil, true
		}
	}
}

// fetchCheckpoint GETs a session's sealed checkpoint image from a
// member.
func (rt *Router) fetchCheckpoint(ctx context.Context, m *member, ckptPath, trace string) ([]byte, error) {
	status, _, body, err := rt.roundTrip(ctx, m, http.MethodGet, ckptPath, nil, trace)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, &checkpointError{status: status}
	}
	return body, nil
}

type checkpointError struct{ status int }

func (e *checkpointError) Error() string {
	return "checkpoint fetch answered " + http.StatusText(e.status)
}

// isFinal reports whether the chunk query marks the session's
// conclusion (?final=1, matching the node's convention).
func isFinal(rawQuery string) bool {
	q, err := url.ParseQuery(rawQuery)
	if err != nil {
		return false
	}
	v := q.Get("final")
	return v != "" && v != "0" && v != "false"
}
