package fleet

import (
	"context"
	"net/http"
	"net/url"
	"sync"
	"time"

	"aspen/internal/telemetry"
)

// Durable-session routing. A session is sticky: every chunk goes to
// the node that owns it, because only that node holds the stream's
// durable checkpoint. The router tracks each session's owner and a
// cached copy of its latest sealed checkpoint image; when the owner
// dies mid-stream, the image ships to the next ranked node (PUT
// /v1/sessions/{g}/{id}/checkpoint) and the unacknowledged chunk is
// re-sent there.
//
// The cache-update ordering is the correctness core: after the owner
// acknowledges a chunk (200 partial), the router fetches the owner's
// fresh checkpoint BEFORE relaying the ack to the client. So at every
// instant, the cached image covers every byte any client believes is
// durable. If the fetch fails (the owner died in the window between
// persisting and answering the fetch), the ack is NOT relayed —
// instead the router fails over onto the previous image and re-sends
// the chunk, which is exactly the single-node crash-recovery
// semantics: un-acked work is replayed, acked work is never lost.
//
// Wrong-machine (410) and torn-image (422) answers from a replacement
// PUT relay to the client non-retryable: they mean the fleet's grammar
// builds diverged, which retrying cannot fix.

// session is one durable stream's routing state.
type session struct {
	mu    sync.Mutex // serializes chunks (concurrent chunk = 409, like the node)
	owner *member    // current sticky owner, nil until first placed
	image []byte     // latest fetched checkpoint image, nil before the first ack
}

// sessionTable tracks live sessions by "grammar/id".
type sessionTable struct {
	mu sync.Mutex
	s  map[string]*session
	rm *routerMetrics
}

func (t *sessionTable) init(rm *routerMetrics) {
	t.s = make(map[string]*session)
	t.rm = rm
}

// acquire returns the session entry, creating it on first use.
func (t *sessionTable) acquire(key string) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	se := t.s[key]
	if se == nil {
		se = &session{}
		t.s[key] = se
		t.rm.sessions.SetInt(int64(len(t.s)))
	}
	return se
}

// drop forgets a concluded session.
func (t *sessionTable) drop(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.s, key)
	t.rm.sessions.SetInt(int64(len(t.s)))
}

// placements snapshots session → owner-node for /healthz (the chaos
// harness reads this to decide which node to kill).
func (t *sessionTable) placements() map[string]string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.s) == 0 {
		return nil
	}
	out := make(map[string]string, len(t.s))
	for k, se := range t.s {
		if o := se.owner; o != nil {
			out[k] = o.name
		}
	}
	return out
}

// serveSession routes one durable-session chunk: sticky forward to the
// owner, with checkpoint-fetch-before-ack and failover when the owner
// is gone.
func (rt *Router) serveSession(ctx context.Context, w http.ResponseWriter, sp *span, grammar, id, rawQuery string, body []byte) {
	skey := grammar + "/" + id
	se := rt.sessions.acquire(skey)
	if !se.mu.TryLock() {
		sp.status, sp.outcome = http.StatusConflict, outcomeDenied
		httpError(w, http.StatusConflict, "session %q has a chunk in flight", id)
		return
	}
	defer se.mu.Unlock()

	key := fnv64(rt.fingerprintFor(grammar), id)
	path := "/v1/parse/" + grammar + "?" + rawQuery
	ckptPath := "/v1/sessions/" + grammar + "/" + url.PathEscape(id) + "/checkpoint"
	final := isFinal(rawQuery)
	trace := telemetry.TraceIDString(sp.id)
	failedOver := false

	tried := make(map[*member]bool)
	for attempt := 0; ; attempt++ {
		// Resolve the owner. A dead owner (or none yet) means placing on
		// the best usable candidate — with a checkpoint ship when the
		// session has history.
		t0 := time.Now()
		owner := se.owner
		if owner == nil || !owner.usable(time.Now()) || tried[owner] {
			prev := se.owner
			repl, done := rt.placeSession(ctx, w, sp, se, key, ckptPath, tried, trace)
			if done {
				return // placeSession already answered (non-retryable or no nodes)
			}
			if prev != nil && repl != prev {
				failedOver = true
			}
			se.owner = repl
			owner = repl
		}
		ph := phasePick
		if attempt > 0 {
			ph = phaseRetry
		}
		sp.addSince(ph, t0)

		t0 = time.Now()
		status, hdr, respBody, err := rt.roundTrip(ctx, owner, http.MethodPost, path, body, trace)
		sp.addSince(phaseForward, t0)

		wait := time.Duration(0)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				sp.status, sp.outcome = http.StatusGatewayTimeout, outcomeTimeout
				httpError(w, http.StatusGatewayTimeout, "request deadline exhausted forwarding session %q", id)
				return
			}
			owner.noteForwardFailure(time.Now(), true)
			tried[owner] = true
		case status == http.StatusTooManyRequests:
			owner.br.success()
			wait = retryAfter(hdr)
		case retryableStatus(status):
			owner.noteForwardFailure(time.Now(), false)
			tried[owner] = true
			wait = retryAfter(hdr)
		case status == http.StatusOK && !final:
			// Partial ack. Fetch the owner's fresh checkpoint BEFORE the
			// client hears the ack; a failed fetch voids the ack and the
			// chunk is re-sent on a replacement.
			owner.br.success()
			t0 = time.Now()
			img, ferr := rt.fetchCheckpoint(ctx, owner, ckptPath, trace)
			sp.addSince(phaseForward, t0)
			if ferr != nil {
				owner.noteForwardFailure(time.Now(), true)
				tried[owner] = true
				break // retry loop: failover and re-send this chunk
			}
			se.image = img
			if failedOver {
				sp.outcome = outcomeFailover
			}
			sp.status = status
			relay(w, status, hdr, respBody)
			return
		default:
			// Conclusion (200 final), client errors, 410, 422, 500: relay
			// verbatim. A concluded session leaves the table.
			owner.br.success()
			if final && status == http.StatusOK {
				rt.sessions.drop(skey)
			}
			if failedOver {
				sp.outcome = outcomeFailover
			}
			sp.status = status
			relay(w, status, hdr, respBody)
			return
		}

		if attempt >= rt.opt.MaxRetries {
			sp.status, sp.outcome = http.StatusBadGateway, outcomeDenied
			httpError(w, http.StatusBadGateway, "exhausted %d forward attempts for session %q", attempt+1, id)
			return
		}
		rt.m.retries.Inc()
		sp.retries++
		t0 = time.Now()
		ok := rt.backoff(ctx, attempt, wait)
		sp.addSince(phaseRetry, t0)
		if !ok {
			sp.status, sp.outcome = http.StatusGatewayTimeout, outcomeTimeout
			httpError(w, http.StatusGatewayTimeout, "request deadline exhausted retrying session %q", id)
			return
		}
	}
}

// placeSession picks (or re-picks) a session's node. For a session
// with history this is failover: prefer a fresh checkpoint from the
// old owner when it still answers (it may merely be draining), fall
// back to the router's cached image, ship it to the replacement, and
// only then hand the replacement back for the chunk re-send. Shipping
// is idempotent — a double failover PUTs the same sealed image again,
// which the store happily overwrites.
//
// Returns (node, false) on success; (nil, true) when it already wrote
// the client answer (no usable nodes, or the replacement refused the
// image non-retryably: 410 wrong machine, 422 torn).
func (rt *Router) placeSession(ctx context.Context, w http.ResponseWriter, sp *span, se *session, key uint64, ckptPath string, tried map[*member]bool, trace string) (*member, bool) {
	hasHistory := se.image != nil || se.owner != nil
	t0 := time.Now()
	defer func() {
		if hasHistory {
			sp.addSince(phaseFailover, t0)
		}
	}()

	// Best image available: the old owner's live checkpoint when
	// reachable (it may have sealed state newer than our cache — e.g.
	// an ack we relayed just before it started draining), else the
	// cache.
	image := se.image
	if old := se.owner; old != nil && !tried[old] {
		if img, err := rt.fetchCheckpoint(ctx, old, ckptPath, trace); err == nil {
			image = img
		}
	}

	for {
		usable, _ := rt.candidatesFor(key)
		var repl *member
		for _, m := range usable {
			if !tried[m] {
				repl = m
				break
			}
		}
		if repl == nil {
			sp.status, sp.outcome = http.StatusServiceUnavailable, outcomeDenied
			rt.m.noNodes.Inc()
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, "no usable fleet member for session failover")
			return nil, true
		}
		if repl == se.owner || image == nil {
			// Same node back (it recovered), or a fresh session with no
			// state to ship: nothing to transfer.
			if hasHistory && repl != se.owner {
				rt.m.failovers.Inc()
			}
			return repl, false
		}

		status, hdr, body, err := rt.roundTrip(ctx, repl, http.MethodPut, ckptPath, image, trace)
		switch {
		case err != nil:
			repl.noteForwardFailure(time.Now(), true)
			tried[repl] = true
			continue
		case retryableStatus(status) || status == http.StatusTooManyRequests:
			if status != http.StatusTooManyRequests {
				repl.noteForwardFailure(time.Now(), false)
			}
			tried[repl] = true
			continue
		case status == http.StatusOK:
			repl.br.success()
			rt.m.failovers.Inc()
			return repl, false
		default:
			// 410 wrong machine / 422 torn / anything else: the fleet's
			// builds disagree — retrying elsewhere cannot help the client.
			repl.br.success()
			sp.status, sp.outcome = status, outcomeDenied
			relay(w, status, hdr, body)
			return nil, true
		}
	}
}

// fetchCheckpoint GETs a session's sealed checkpoint image from a
// member.
func (rt *Router) fetchCheckpoint(ctx context.Context, m *member, ckptPath, trace string) ([]byte, error) {
	status, _, body, err := rt.roundTrip(ctx, m, http.MethodGet, ckptPath, nil, trace)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, &checkpointError{status: status}
	}
	return body, nil
}

type checkpointError struct{ status int }

func (e *checkpointError) Error() string {
	return "checkpoint fetch answered " + http.StatusText(e.status)
}

// isFinal reports whether the chunk query marks the session's
// conclusion (?final=1, matching the node's convention).
func isFinal(rawQuery string) bool {
	q, err := url.ParseQuery(rawQuery)
	if err != nil {
		return false
	}
	v := q.Get("final")
	return v != "" && v != "0" && v != "false"
}
