package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aspen/internal/lang"
	"aspen/internal/serve"
	"aspen/internal/store"
)

// testNode is one real aspend server (durable, multi-grammar) in an
// in-process fleet.
type testNode struct {
	srv *serve.Server
	ts  *httptest.Server
}

func (n *testNode) name() string { return strings.TrimPrefix(n.ts.URL, "http://") }

// kill simulates SIGKILL: connections sever, nothing drains.
func (n *testNode) kill() {
	n.ts.CloseClientConnections()
	n.ts.Close()
}

func startNode(t *testing.T, langs ...*lang.Language) *testNode {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := serve.New(serve.Options{Languages: langs, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &testNode{srv: srv, ts: ts}
}

// startFleet boots n real nodes and a router over them with
// test-speed probing and backoff.
func startFleet(t *testing.T, n int, langs ...*lang.Language) (*Router, []*testNode) {
	t.Helper()
	if len(langs) == 0 {
		langs = []*lang.Language{lang.JSON()}
	}
	nodes := make([]*testNode, n)
	urls := make([]string, n)
	for i := range nodes {
		nodes[i] = startNode(t, langs...)
		urls[i] = nodes[i].ts.URL
	}
	rt, err := New(Options{
		Nodes:         urls,
		ProbeInterval: 50 * time.Millisecond,
		RetryBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt, nodes
}

func routerServer(t *testing.T, rt *Router) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postParse(t *testing.T, base, grammar, query string, body []byte) (*http.Response, serve.ParseResponse) {
	t.Helper()
	url := base + "/v1/parse/" + grammar
	if query != "" {
		url += "?" + query
	}
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr serve.ParseResponse
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &pr); err != nil {
			t.Fatalf("decoding parse response: %v (%s)", err, raw)
		}
	}
	return resp, pr
}

func routerHealth(t *testing.T, base string) RouterHealth {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h RouterHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

// waitHealth polls router /healthz until cond holds (the prober needs
// a few rounds to notice state changes).
func waitHealth(t *testing.T, base string, what string, cond func(RouterHealth) bool) RouterHealth {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		h := routerHealth(t, base)
		if cond(h) {
			return h
		}
		if time.Now().After(deadline) {
			raw, _ := json.Marshal(h)
			t.Fatalf("timed out waiting for %s; last health: %s", what, raw)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestFleetPlainParse pins the stateless forward path: parses through
// the router answer exactly like a direct node parse.
func TestFleetPlainParse(t *testing.T) {
	rt, nodes := startFleet(t, 3)
	ts := routerServer(t, rt)
	doc := []byte(lang.JSONSample)

	_, direct := postParse(t, nodes[0].ts.URL, "JSON", "", doc)
	resp, viaRouter := postParse(t, ts.URL, "JSON", "", doc)
	if resp.StatusCode != http.StatusOK || !viaRouter.Accepted {
		t.Fatalf("router parse: status %d accepted %v", resp.StatusCode, viaRouter.Accepted)
	}
	if viaRouter.Bytes != direct.Bytes || viaRouter.Tokens != direct.Tokens ||
		viaRouter.MaxStackDepth != direct.MaxStackDepth || viaRouter.Reports != direct.Reports {
		t.Fatalf("router answer differs from direct:\nrouter: %+v\ndirect: %+v", viaRouter, direct)
	}
	if resp.Header.Get(traceHeader) == "" {
		t.Fatal("router response missing X-Aspen-Trace")
	}
	// An unknown grammar is a non-retryable 404, relayed verbatim.
	resp404, _ := postParse(t, ts.URL, "NoSuch", "", doc)
	if resp404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown grammar via router: status %d, want 404", resp404.StatusCode)
	}
}

// TestFleetStickySessions pins sticky placement: every chunk of a
// session lands on one owner, the owner is visible on /healthz, and a
// concluded session leaves the table.
func TestFleetStickySessions(t *testing.T) {
	rt, _ := startFleet(t, 3)
	ts := routerServer(t, rt)
	doc := []byte(lang.JSONSample)
	third := len(doc) / 3

	resp, pr := postParse(t, ts.URL, "JSON", "session=sticky", doc[:third])
	if resp.StatusCode != http.StatusOK || !pr.Partial {
		t.Fatalf("chunk 1: status %d partial %v", resp.StatusCode, pr.Partial)
	}
	h := routerHealth(t, ts.URL)
	owner := h.Sessions["JSON/sticky"]
	if owner == "" {
		t.Fatalf("session missing from router /healthz placements: %+v", h.Sessions)
	}
	resp, _ = postParse(t, ts.URL, "JSON", "session=sticky", doc[third:2*third])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk 2: status %d", resp.StatusCode)
	}
	if got := routerHealth(t, ts.URL).Sessions["JSON/sticky"]; got != owner {
		t.Fatalf("session moved from %s to %s with every node healthy", owner, got)
	}
	resp, final := postParse(t, ts.URL, "JSON", "session=sticky&final=1", doc[2*third:])
	if resp.StatusCode != http.StatusOK || !final.Accepted {
		t.Fatalf("conclusion: status %d accepted %v err %q", resp.StatusCode, final.Accepted, final.Error)
	}
	if got := routerHealth(t, ts.URL).Sessions["JSON/sticky"]; got != "" {
		t.Fatalf("concluded session still placed on %s", got)
	}
}

// TestFleetSessionFailover is the tentpole contract in-process: kill
// the session's owner mid-stream, and the conclusion on the
// replacement is byte-identical to an uninterrupted whole-document
// parse.
func TestFleetSessionFailover(t *testing.T) {
	rt, nodes := startFleet(t, 3)
	ts := routerServer(t, rt)
	doc := []byte(lang.JSONSample)
	half := len(doc) / 2

	// Reference: whole-document parse through the router.
	_, ref := postParse(t, ts.URL, "JSON", "", doc)
	if !ref.Accepted {
		t.Fatal("reference parse rejected")
	}

	resp, _ := postParse(t, ts.URL, "JSON", "session=fo", doc[:half])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk 1: status %d", resp.StatusCode)
	}
	owner := routerHealth(t, ts.URL).Sessions["JSON/fo"]
	var victim *testNode
	for _, n := range nodes {
		if n.name() == owner {
			victim = n
		}
	}
	if victim == nil {
		t.Fatalf("owner %q not among fleet nodes", owner)
	}
	victim.kill()

	resp, final := postParse(t, ts.URL, "JSON", "session=fo&final=1", doc[half:])
	if resp.StatusCode != http.StatusOK || !final.Accepted {
		t.Fatalf("post-kill conclusion: status %d accepted %v err %q", resp.StatusCode, final.Accepted, final.Error)
	}
	if final.Bytes != ref.Bytes || final.Tokens != ref.Tokens ||
		final.MaxStackDepth != ref.MaxStackDepth || final.Reports != ref.Reports {
		t.Fatalf("failover conclusion differs from whole parse:\nfailover: %+v\n   whole: %+v", final, ref)
	}
	if got := rt.m.failovers.Value(); got < 1 {
		t.Fatalf("fleet_failovers_total = %d, want ≥ 1", got)
	}
	// Membership reconverges around the loss: degraded, two ready.
	waitHealth(t, ts.URL, "degraded health after kill", func(h RouterHealth) bool {
		return h.Status == "degraded" && h.ReadyNodes == 2
	})
}

// TestFleetDoubleFailover pins idempotent resume: the session survives
// losing its owner twice, and the conclusion still matches.
func TestFleetDoubleFailover(t *testing.T) {
	rt, nodes := startFleet(t, 3)
	ts := routerServer(t, rt)
	doc := []byte(lang.JSONSample)
	third := len(doc) / 3

	_, ref := postParse(t, ts.URL, "JSON", "", doc)

	byName := map[string]*testNode{}
	for _, n := range nodes {
		byName[n.name()] = n
	}
	killOwner := func() {
		owner := routerHealth(t, ts.URL).Sessions["JSON/dfo"]
		n := byName[owner]
		if n == nil {
			t.Fatalf("owner %q not found", owner)
		}
		n.kill()
		delete(byName, owner)
	}

	if resp, _ := postParse(t, ts.URL, "JSON", "session=dfo", doc[:third]); resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk 1: status %d", resp.StatusCode)
	}
	killOwner()
	if resp, _ := postParse(t, ts.URL, "JSON", "session=dfo", doc[third:2*third]); resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk 2 (first failover): status %d", resp.StatusCode)
	}
	killOwner()
	resp, final := postParse(t, ts.URL, "JSON", "session=dfo&final=1", doc[2*third:])
	if resp.StatusCode != http.StatusOK || !final.Accepted {
		t.Fatalf("chunk 3 (second failover): status %d accepted %v err %q", resp.StatusCode, final.Accepted, final.Error)
	}
	if final.Bytes != ref.Bytes || final.Tokens != ref.Tokens ||
		final.MaxStackDepth != ref.MaxStackDepth || final.Reports != ref.Reports {
		t.Fatalf("double-failover conclusion differs:\ngot:  %+v\nwant: %+v", final, ref)
	}
	if got := rt.m.failovers.Value(); got < 2 {
		t.Fatalf("fleet_failovers_total = %d, want ≥ 2", got)
	}
}

// TestFleetDegradation pins graceful degradation: with a node dead,
// every plain parse still answers 200 — zero dropped requests for a
// healthy grammar.
func TestFleetDegradation(t *testing.T) {
	rt, nodes := startFleet(t, 3)
	ts := routerServer(t, rt)
	doc := []byte(lang.JSONSample)

	nodes[1].kill()
	for i := 0; i < 20; i++ {
		resp, pr := postParse(t, ts.URL, "JSON", "", doc)
		if resp.StatusCode != http.StatusOK || !pr.Accepted {
			t.Fatalf("parse %d after node loss: status %d accepted %v", i, resp.StatusCode, pr.Accepted)
		}
	}
	h := waitHealth(t, ts.URL, "degraded health", func(h RouterHealth) bool {
		return h.Status == "degraded" && h.ReadyNodes == 2
	})
	for _, n := range h.Nodes {
		if n.Node == nodes[1].name() && n.State == "ready" {
			t.Fatalf("killed node still reported ready: %+v", n)
		}
	}
	if got := rt.reg.Snapshot(); got.Counters == nil {
		_ = got // snapshot shape is asserted by telemetry's own tests
	}
}

// TestFleetAdminFanoutAndDivergence pins control-plane convergence:
// mutations through the router reach every journal; a node mutated
// behind the router's back surfaces as divergence on /healthz until a
// fleet-wide mutation re-converges it.
func TestFleetAdminFanoutAndDivergence(t *testing.T) {
	rt, nodes := startFleet(t, 3)
	ts := routerServer(t, rt)

	adminBody := func(op, grammar string) []byte {
		b, _ := json.Marshal(map[string]string{"op": op, "grammar": grammar})
		return b
	}
	resp, err := http.Post(ts.URL+"/v1/admin/grammars", "application/json", bytes.NewReader(adminBody("add", "XML")))
	if err != nil {
		t.Fatal(err)
	}
	var fanout AdminFanoutResponse
	if err := json.NewDecoder(resp.Body).Decode(&fanout); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !fanout.OK || len(fanout.Nodes) != 3 {
		t.Fatalf("admin fanout: status %d ok %v nodes %d: %+v", resp.StatusCode, fanout.OK, len(fanout.Nodes), fanout)
	}
	// Every node now serves XML.
	for _, n := range nodes {
		if r, pr := postParse(t, n.ts.URL, "XML", "", []byte(lang.XMLSample)); r.StatusCode != http.StatusOK || !pr.Accepted {
			t.Fatalf("node %s refused XML after fanout: status %d", n.name(), r.StatusCode)
		}
	}
	if h := routerHealth(t, ts.URL); !h.RegistryConverged {
		t.Fatalf("registry diverged after a full fanout: %+v", h)
	}

	// Mutate one node behind the router's back: divergence surfaces.
	resp, err = http.Post(nodes[0].ts.URL+"/v1/admin/grammars", "application/json", bytes.NewReader(adminBody("add", "DOT")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	waitHealth(t, ts.URL, "registry divergence", func(h RouterHealth) bool {
		return !h.RegistryConverged
	})
	if rt.m.diverged.Value() != 1 {
		t.Fatal("fleet_registry_diverged gauge not raised")
	}

	// A fleet-wide fanout of the same mutation re-converges (the node
	// that already has it answers 409 conflict — surfaced, not hidden).
	resp, err = http.Post(ts.URL+"/v1/admin/grammars", "application/json", bytes.NewReader(adminBody("add", "DOT")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	waitHealth(t, ts.URL, "registry reconvergence", func(h RouterHealth) bool {
		return h.RegistryConverged
	})
}

// TestFleetSessionBusy pins chunk serialization at the router tier: a
// second chunk for a session with one in flight answers 409 without
// touching a node.
func TestFleetSessionBusy(t *testing.T) {
	rt, _ := startFleet(t, 1)
	ts := routerServer(t, rt)

	se := rt.sessions.acquire("JSON/busy", time.Now())
	se.mu.Lock()
	defer se.mu.Unlock()
	resp, _ := postParse(t, ts.URL, "JSON", "session=busy", []byte("{}"))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent chunk: status %d, want 409", resp.StatusCode)
	}
}

// TestFleetHealthzDown pins the router's own readiness: with every
// node gone, /healthz answers 503 "down" — a load balancer above a
// dead fleet sees the truth.
func TestFleetHealthzDown(t *testing.T) {
	rt, nodes := startFleet(t, 2)
	ts := routerServer(t, rt)
	for _, n := range nodes {
		n.kill()
	}
	waitHealth(t, ts.URL, "fleet down", func(h RouterHealth) bool {
		return h.Status == "down" && h.ReadyNodes == 0
	})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with no nodes: status %d, want 503", resp.StatusCode)
	}
	// And the data plane refuses with Retry-After rather than hanging.
	presp, _ := postParse(t, ts.URL, "JSON", "", []byte("{}"))
	if presp.StatusCode != http.StatusServiceUnavailable || presp.Header.Get("Retry-After") == "" {
		t.Fatalf("parse with no nodes: status %d Retry-After %q", presp.StatusCode, presp.Header.Get("Retry-After"))
	}
}
