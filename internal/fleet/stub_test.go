package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// Stub-node tests: scripted HTTP handlers standing in for aspend
// nodes, pinning router behavior that real nodes can't stage on
// demand (precise 429 sequences, permanent 5xx, wrong-machine 410).

// stubNode is a scripted fleet member.
type stubNode struct {
	ts    *httptest.Server
	hits  atomic.Int64
	serve func(n int64, w http.ResponseWriter, r *http.Request)
}

func newStub(t *testing.T, serve func(n int64, w http.ResponseWriter, r *http.Request)) *stubNode {
	t.Helper()
	s := &stubNode{serve: serve}
	s.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" || r.URL.Path == "/healthz" || r.URL.Path == "/v1/grammars" {
			if r.URL.Path == "/v1/grammars" {
				w.Header().Set("Content-Type", "application/json")
				io.WriteString(w, `[{"name":"JSON","fingerprint":"00000000000000aa"}]`)
				return
			}
			w.WriteHeader(http.StatusOK)
			return
		}
		s.serve(s.hits.Add(1), w, r)
	}))
	t.Cleanup(s.ts.Close)
	return s
}

func stubRouter(t *testing.T, opt Options, stubs ...*stubNode) (*Router, *httptest.Server) {
	t.Helper()
	for _, s := range stubs {
		opt.Nodes = append(opt.Nodes, s.ts.URL)
	}
	if opt.ProbeInterval == 0 {
		opt.ProbeInterval = 50 * time.Millisecond
	}
	if opt.RetryBackoff == 0 {
		opt.RetryBackoff = time.Millisecond
	}
	rt, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

func ok200(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, `{"grammar":"JSON","accepted":true,"bytes":2,"tokens":2}`)
}

// TestRouterHonors429RetryAfter pins backpressure handling: 429s are
// absorbed by waiting as told and re-offering — the client sees one
// 200, never a 429, and the throttled node is never breaker-penalized.
func TestRouterHonors429RetryAfter(t *testing.T) {
	stub := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		if n <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		ok200(w)
	})
	rt, ts := stubRouter(t, Options{}, stub)

	resp, err := http.Post(ts.URL+"/v1/parse/JSON", "application/octet-stream", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 after absorbing 429s", resp.StatusCode)
	}
	if got := rt.m.retries.Value(); got != 2 {
		t.Fatalf("fleet_retries_total = %d, want 2", got)
	}
	if rt.members[0].br.open(time.Now()) {
		t.Fatal("429 backpressure opened the breaker")
	}
}

// TestRouterRotatesOffFailingNode pins retry rotation: with one
// member answering 503 and another healthy, the client always gets
// 200 and the failing member is charged the failures.
func TestRouterRotatesOffFailingNode(t *testing.T) {
	bad := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	good := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) { ok200(w) })
	rt, ts := stubRouter(t, Options{}, bad, good)

	for i := 0; i < 10; i++ {
		resp, err := http.Post(ts.URL+"/v1/parse/JSON", "application/octet-stream", bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 via rotation", i, resp.StatusCode)
		}
	}
	var badM *member
	for _, m := range rt.members {
		if "http://"+m.name == bad.ts.URL {
			badM = m
		}
	}
	if badM.forwardErrs.Value() > 0 && good.hits.Load() == 0 {
		t.Fatal("failures recorded but no traffic reached the healthy member")
	}
}

// TestRouterBreakerShortCircuits pins the breaker's job: after
// threshold data-plane failures the member stops receiving forwards
// entirely — later requests are refused at the router without another
// doomed connection. Single node and no retries keep the hit count
// deterministic.
func TestRouterBreakerShortCircuits(t *testing.T) {
	bad := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
	})
	rt, ts := stubRouter(t, Options{MaxRetries: -1, BreakerThreshold: 2, BreakerCooldown: time.Hour}, bad)

	post := func() int {
		resp, err := http.Post(ts.URL+"/v1/parse/JSON", "application/octet-stream", bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	// Two failures reach the node and open the breaker...
	for i := 0; i < 2; i++ {
		if got := post(); got != http.StatusBadGateway {
			t.Fatalf("request %d: status %d, want 502 relayed", i, got)
		}
	}
	// ...after which the router refuses locally: the node sees nothing.
	for i := 0; i < 5; i++ {
		if got := post(); got != http.StatusServiceUnavailable {
			t.Fatalf("post-open request %d: status %d, want 503 (no usable member)", i, got)
		}
	}
	if hits := bad.hits.Load(); hits != 2 {
		t.Fatalf("failing node took %d forwards, want exactly 2 (breaker threshold)", hits)
	}
	m := rt.members[0]
	if !m.br.open(time.Now()) {
		t.Fatal("breaker not open after repeated 502s")
	}
	if m.breakerOpens.Value() != 1 {
		t.Fatalf("fleet_breaker_opens_total = %d, want 1", m.breakerOpens.Value())
	}
	if rt.m.noNodes.Value() != 5 {
		t.Fatalf("fleet_no_node_total = %d, want 5", rt.m.noNodes.Value())
	}
}

// TestRouterRelays410NonRetryable pins the wrong-machine contract
// through the router: a 410 from a node relays to the client
// untouched, with zero retries — no other node can do better.
func TestRouterRelays410NonRetryable(t *testing.T) {
	stub := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGone)
		io.WriteString(w, `{"error":"checkpoint was taken on a different machine build"}`)
	})
	other := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusGone)
		io.WriteString(w, `{"error":"checkpoint was taken on a different machine build"}`)
	})
	rt, ts := stubRouter(t, Options{}, stub, other)

	resp, err := http.Post(ts.URL+"/v1/parse/JSON", "application/octet-stream", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("status %d, want 410 relayed", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("410 body not relayed: %q", body)
	}
	if got := rt.m.retries.Value(); got != 0 {
		t.Fatalf("fleet_retries_total = %d after a non-retryable 410, want 0", got)
	}
	if stub.hits.Load()+other.hits.Load() != 1 {
		t.Fatalf("410 hit %d nodes, want exactly 1", stub.hits.Load()+other.hits.Load())
	}
}

// TestRouterTraceForwarded pins trace propagation: the inbound
// X-Aspen-Trace rides the forwarded request, and a request without one
// gets an ID assigned before the hop.
func TestRouterTraceForwarded(t *testing.T) {
	var seen atomic.Pointer[string]
	stub := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		h := r.Header.Get(traceHeader)
		seen.Store(&h)
		ok200(w)
	})
	_, ts := stubRouter(t, Options{}, stub)

	const inbound = "00000000deadbeef"
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/parse/JSON", bytes.NewReader([]byte("{}")))
	req.Header.Set(traceHeader, inbound)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := seen.Load(); got == nil || *got != inbound {
		t.Fatalf("node saw trace %v, want %q forwarded", got, inbound)
	}
	if got := resp.Header.Get(traceHeader); got != inbound {
		t.Fatalf("router response trace %q, want %q", got, inbound)
	}

	// No inbound ID: the router assigns one pre-admission and forwards it.
	resp, err = http.Post(ts.URL+"/v1/parse/JSON", "application/octet-stream", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	got := seen.Load()
	if got == nil || *got == "" || *got == inbound {
		t.Fatalf("node saw trace %v, want a fresh router-assigned ID", got)
	}
	if resp.Header.Get(traceHeader) != *got {
		t.Fatalf("router answered trace %q but forwarded %q", resp.Header.Get(traceHeader), *got)
	}
}

// TestRouterExhaustsRetriesTo502 pins bounded retries: a fleet that is
// all 503 yields a 502 to the client after MaxRetries attempts, not an
// infinite loop.
func TestRouterExhaustsRetriesTo502(t *testing.T) {
	stub := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	rt, ts := stubRouter(t, Options{MaxRetries: 2, BreakerThreshold: 100}, stub)

	resp, err := http.Post(ts.URL+"/v1/parse/JSON", "application/octet-stream", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 502 (exhausted) or 503 (no usable member)", resp.StatusCode)
	}
	if got := rt.m.retries.Value(); got == 0 {
		t.Fatal("no retries recorded against an all-503 fleet")
	}
}
