package fleet

import (
	"aspen/internal/telemetry"
)

// Router span phases, in lifecycle order: choosing a node, the forward
// itself, retry overhead (backoff sleeps + re-sends), and session
// failover (checkpoint fetch + ship + resume).
const (
	phasePick = iota
	phaseForward
	phaseRetry
	phaseFailover
	numPhases
)

var phaseNames = []string{"pick", "forward", "retry", "failover"}

// Phase latency buckets: 100 ns … ~6.7 s, ×4 per step (matches the
// node-side serve_phase_ns resolution so cross-tier comparisons line
// up bucket for bucket).
var phaseNSBuckets = telemetry.ExponentialBuckets(100, 4, 14)

// routerMetrics are the fleet-level series; per-node series live on
// each member. All resolved at construction so the forward path
// touches atomics only.
type routerMetrics struct {
	requests  *telemetry.Counter // requests admitted by the router
	retries   *telemetry.Counter // forward attempts beyond each request's first
	failovers *telemetry.Counter // sessions moved to a replacement node
	noNodes   *telemetry.Counter // requests refused 503: no usable member
	sessions  *telemetry.Gauge   // sessions currently tracked (sticky placements)
	diverged  *telemetry.Gauge   // 1 while ready members disagree on the grammar registry
	ready     *telemetry.Gauge   // members currently probed ready

	// hedgeTotal counts fired hedges by how they resolved
	// (hedge_total{outcome=win|loss|error}); an unfired hedge — the
	// primary answered within the delay — counts nothing.
	hedgeTotal map[string]*telemetry.Counter

	phaseNS [numPhases]*telemetry.Histogram
}

// Hedge outcomes: the hedge leg won, the primary won (hedge canceled),
// or both legs failed.
const (
	hedgeWin   = "win"
	hedgeLoss  = "loss"
	hedgeError = "error"
)

var hedgeOutcomes = []string{hedgeWin, hedgeLoss, hedgeError}

func newRouterMetrics(reg *telemetry.Registry) routerMetrics {
	m := routerMetrics{
		requests:   reg.Counter("fleet_requests_total", "requests admitted by the fleet router"),
		retries:    reg.Counter("fleet_retries_total", "forward attempts beyond each request's first"),
		failovers:  reg.Counter("fleet_failovers_total", "durable sessions resumed on a replacement node"),
		noNodes:    reg.Counter("fleet_no_node_total", "requests refused 503 because no usable member remained"),
		sessions:   reg.Gauge("fleet_sessions", "durable sessions with a sticky placement tracked by the router"),
		diverged:   reg.Gauge("fleet_registry_diverged", "1 while ready members disagree on the grammar registry"),
		ready:      reg.Gauge("fleet_nodes_ready", "members currently probed ready"),
		hedgeTotal: make(map[string]*telemetry.Counter, len(hedgeOutcomes)),
	}
	for _, o := range hedgeOutcomes {
		m.hedgeTotal[o] = reg.Counter(telemetry.LabeledName("hedge_total", "outcome", o),
			"hedged whole-document forwards that fired, by resolution")
	}
	for i := range m.phaseNS {
		m.phaseNS[i] = reg.Histogram(
			telemetry.LabeledName("fleet_phase_ns", "phase", phaseNames[i]),
			"router request phase latency (ns): node pick, forward, retry overhead, session failover",
			phaseNSBuckets)
	}
	return m
}
