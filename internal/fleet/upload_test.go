package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"aspen/internal/serve"
)

// fleetUploadPDA is the (ab)* machine the fanout test ships fleet-wide.
const fleetUploadPDA = `
[States]
q0 q1
End
[Sigma]
a b
End
[Stack Sigma]
A
End
[Rules]
q0, a, epsilon, A, q1
q1, b, A, epsilon, q0
End
[Start]
q0
End
[Accept]
q0
End
`

// TestUploadFanout ships a tenant upload through the router's admin
// fanout: every member must admit and journal it, the router's registry
// view must converge on the new tenant, and parses routed anywhere in
// the fleet must answer identically — same fingerprint, same verdicts.
func TestUploadFanout(t *testing.T) {
	rt, nodes := startFleet(t, 3)
	ts := routerServer(t, rt)

	body, err := json.Marshal(map[string]any{
		"op": "upload", "grammar": "alt", "format": "pda", "source": fleetUploadPDA,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/admin/grammars", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload fanout: status %d: %s", resp.StatusCode, raw)
	}
	var fr AdminFanoutResponse
	if err := json.Unmarshal(raw, &fr); err != nil {
		t.Fatal(err)
	}
	if !fr.OK || len(fr.Nodes) != len(nodes) {
		t.Fatalf("fanout verdict: ok=%v nodes=%d: %s", fr.OK, len(fr.Nodes), raw)
	}
	for _, nr := range fr.Nodes {
		if nr.Status != http.StatusOK || nr.Error != "" {
			t.Errorf("member %s: status %d err %q", nr.Node, nr.Status, nr.Error)
		}
	}

	// Every member admitted the identical machine: one fingerprint
	// fleet-wide, with the proven bound surfaced.
	fp := ""
	for i, n := range nodes {
		var info *serve.GrammarInfo
		for _, gi := range n.srv.Grammars() {
			if gi.Name == "alt" {
				g := gi
				info = &g
			}
		}
		if info == nil {
			t.Fatalf("member %d did not load the upload", i)
		}
		if info.StackBound != 1 || info.Format != "pda" {
			t.Errorf("member %d: bound %d format %q", i, info.StackBound, info.Format)
		}
		if fp == "" {
			fp = info.Fingerprint
		} else if info.Fingerprint != fp {
			t.Errorf("member %d fingerprint %s, fleet has %s", i, info.Fingerprint, fp)
		}
	}

	// The fleet serves the tenant: routed parses answer the same verdict
	// no matter which member takes them, and every member answers the
	// same directly.
	for _, c := range []struct {
		doc  string
		want bool
	}{{"abab", true}, {"", true}, {"aab", false}, {"ba", false}} {
		for round := 0; round < len(nodes); round++ {
			resp, pr := postParse(t, ts.URL, "alt", "", []byte(c.doc))
			if resp.StatusCode != http.StatusOK || pr.Accepted != c.want {
				t.Fatalf("routed parse %q: status %d accepted=%v, want %v",
					c.doc, resp.StatusCode, pr.Accepted, c.want)
			}
		}
		for i, n := range nodes {
			resp, pr := postParse(t, n.ts.URL, "alt", "", []byte(c.doc))
			if resp.StatusCode != http.StatusOK || pr.Accepted != c.want {
				t.Fatalf("member %d parse %q: status %d accepted=%v, want %v",
					i, c.doc, resp.StatusCode, pr.Accepted, c.want)
			}
		}
	}

	// A hostile upload is rejected fleet-wide: 502 (no member admitted),
	// every member answering 422 with diagnostics, and no member's
	// registry grows.
	body, _ = json.Marshal(map[string]any{
		"op": "upload", "grammar": "bad", "format": "pda",
		"source": "[States]\nq0\n",
	})
	resp, err = http.Post(ts.URL+"/v1/admin/grammars", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("hostile fanout: status %d, want 502: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &fr); err != nil {
		t.Fatal(err)
	}
	for _, nr := range fr.Nodes {
		if nr.Status != http.StatusUnprocessableEntity {
			t.Errorf("member %s: hostile upload status %d, want 422", nr.Node, nr.Status)
		}
		var rr serve.RejectionResponse
		if err := json.Unmarshal([]byte(nr.Body), &rr); err != nil {
			t.Errorf("member %s: rejection body not machine-readable: %v", nr.Node, err)
		} else if len(rr.Diagnostics) == 0 || rr.Diagnostics[0].Check != "parse" {
			t.Errorf("member %s: diagnostics %+v", nr.Node, rr.Diagnostics)
		}
	}
	for i, n := range nodes {
		for _, gi := range n.srv.Grammars() {
			if gi.Name == "bad" {
				t.Errorf("member %d loaded a rejected upload", i)
			}
		}
	}
}
