package fleet

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aspen/internal/lang"
	"aspen/internal/serve"
	"aspen/internal/store"
)

// startSlowNode is startNode with a latency shim: every parse POST
// stalls by delay before the real handler runs. This is the
// gray-failure stand-in — the node is ready, correct, and slow, so
// only latency-aware routing can see anything wrong with it.
func startSlowNode(t *testing.T, delay time.Duration, opts serve.Options) *testNode {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	opts.Store = st
	srv, err := serve.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	inner := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/parse/") {
			time.Sleep(delay)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return &testNode{srv: srv, ts: ts}
}

func p99(durs []time.Duration) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// TestOverloadChaos is the overload acceptance scenario: one tenant
// floods the fleet while one node is gray-slow, with hedging armed.
// The quiet tenant must ride it out — never shed, tail latency within
// 2× its unloaded baseline (with a CI-noise floor) — every shed the
// flooding tenant receives must be a 429 carrying a valid Retry-After,
// and a durable session driven through the storm must land byte-exact
// totals (hedging must not duplicate side effects).
func TestOverloadChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos scenario")
	}
	// A deliberately tiny waiting room (one worker, no queue slack) so
	// that a modest flood overruns admission. Hot senders dribble their
	// body (below) so each request holds its admission ticket for
	// several milliseconds while blocked on Read — overlap is guaranteed
	// without burning CPU. That matters twice over: CI machines can be
	// single-core, where a CPU-bound flood would both slow the quiet
	// tenant in a way no admission control can fix and serialize
	// requests so thoroughly that admission never overlaps at all.
	langs := []*lang.Language{lang.JSON(), lang.XML()}
	nodeOpts := serve.Options{Languages: langs, Workers: 1, QueueDepth: -1}

	fast := startSlowNode(t, 0, nodeOpts)
	gray := startSlowNode(t, 20*time.Millisecond, nodeOpts)
	rt, err := New(Options{
		Nodes:          []string{fast.ts.URL, gray.ts.URL},
		ProbeInterval:  25 * time.Millisecond,
		RetryBackoff:   5 * time.Millisecond,
		Hedge:          true,
		GrayMinSamples: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	quietDoc := []byte(`<root><item id="i0">text</item><item id="i1">more</item></root>`)
	hotDoc := []byte(`{"k": [` + strings.Repeat(`[1, "x", true], `, 64) + `0]}`)

	// postDribbled streams hotDoc in two halves with a pause between —
	// the parser blocks on Read mid-document, pinning the admission
	// ticket without CPU. Chunked transfer (no Content-Length) also
	// keeps the deadline predictor out of the picture for the flood:
	// these sheds must come from the waiting room.
	postDribbled := func(base string) (*http.Response, error) {
		pr, pw := io.Pipe()
		go func() {
			half := len(hotDoc) / 2
			pw.Write(hotDoc[:half])
			time.Sleep(8 * time.Millisecond)
			pw.Write(hotDoc[half:])
			pw.Close()
		}()
		return http.Post(base+"/v1/parse/JSON", "application/octet-stream", pr)
	}

	quietOnce := func() (int, time.Duration) {
		t0 := time.Now()
		resp, err := http.Post(front.URL+"/v1/parse/XML", "application/octet-stream", bytes.NewReader(quietDoc))
		if err != nil {
			t.Error(err)
			return 0, 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, time.Since(t0)
	}

	// Unloaded baseline for the quiet tenant, through the same router.
	var baseline []time.Duration
	for i := 0; i < 30; i++ {
		code, d := quietOnce()
		if code != http.StatusOK {
			t.Fatalf("unloaded quiet request %d: status %d", i, code)
		}
		baseline = append(baseline, d)
	}
	baseP99 := p99(baseline)

	// Ground truth for the session check: the same document, whole, on
	// an unloaded fleet.
	_, want := postParse(t, front.URL, "XML", "", quietDoc)
	if !want.Accepted {
		t.Fatalf("ground-truth parse rejected: %+v", want)
	}

	// The storm: the hot tenant floods both nodes directly (the fleet
	// is saturated no matter how the router places), while the quiet
	// tenant keeps probing through the router.
	var (
		stop       = make(chan struct{})
		floodWG    sync.WaitGroup
		shedCount  atomic.Int64
		shedBadRA  atomic.Int64
		floodOK    atomic.Int64
		floodErr   atomic.Int64
		floodOther atomic.Int64
	)
	for _, n := range []*testNode{fast, gray} {
		// Enough concurrency to overrun the grammar's one-ticket
		// waiting room on every node.
		for i := 0; i < 8; i++ {
			floodWG.Add(1)
			go func(base string) {
				defer floodWG.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					resp, err := postDribbled(base)
					if err != nil {
						floodErr.Add(1)
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusTooManyRequests:
						shedCount.Add(1)
						secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
						if err != nil || secs < 1 || secs > 60 {
							shedBadRA.Add(1)
						}
					case http.StatusOK:
						floodOK.Add(1)
					default:
						floodOther.Add(1)
					}
				}
			}(n.ts.URL)
		}
	}

	// Quiet tenant under load: every request must come back 200.
	var loaded []time.Duration
	for i := 0; i < 60; i++ {
		code, d := quietOnce()
		if code != http.StatusOK {
			close(stop)
			floodWG.Wait()
			t.Fatalf("quiet tenant shed under load: request %d answered %d", i, code)
		}
		loaded = append(loaded, d)
		time.Sleep(10 * time.Millisecond)
	}

	// A durable session through the storm: chunk, then conclude, and
	// the totals must match the uninterrupted whole-document parse —
	// duplicated side effects (a hedged chunk re-executed anywhere)
	// would double-count bytes or tokens.
	half := len(quietDoc) / 2
	resp, part := postParse(t, front.URL, "XML", "session=storm-1", quietDoc[:half])
	if resp.StatusCode != http.StatusOK || !part.Partial {
		close(stop)
		floodWG.Wait()
		t.Fatalf("session chunk under load: status %d partial %v", resp.StatusCode, part.Partial)
	}
	resp, got := postParse(t, front.URL, "XML", "session=storm-1&final=1", quietDoc[half:])
	close(stop)
	floodWG.Wait()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session conclude under load: status %d", resp.StatusCode)
	}
	if !got.Accepted || got.Bytes != want.Bytes || got.Tokens != want.Tokens || got.Cycles != want.Cycles {
		t.Fatalf("session under storm diverged from ground truth:\n got %+v\nwant %+v", got, want)
	}

	if shedCount.Load() == 0 {
		t.Fatalf("flood never produced a shed — the scenario did not overload the fleet (ok %d, err %d, other %d)",
			floodOK.Load(), floodErr.Load(), floodOther.Load())
	}
	if bad := shedBadRA.Load(); bad != 0 {
		t.Fatalf("%d of %d sheds carried an invalid Retry-After", bad, shedCount.Load())
	}

	loadedP99 := p99(loaded)
	// 2× the unloaded baseline, with a floor against CI scheduler noise
	// (the baseline can be a handful of ms; doubling noise is not a
	// regression signal).
	bound := 2 * baseP99
	if floor := 300 * time.Millisecond; bound < floor {
		bound = floor
	}
	if loadedP99 > bound {
		t.Fatalf("quiet tenant p99 under load %v exceeds bound %v (baseline %v)", loadedP99, bound, baseP99)
	}
	t.Logf("quiet p99: baseline %v, loaded %v (bound %v); sheds %d; flood non-200/429 %d",
		baseP99, loadedP99, bound, shedCount.Load(), floodOther.Load())
}
