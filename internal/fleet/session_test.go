package fleet

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Session-path regression tests over scripted stubs: conclusion
// classification, the dirty-reset protocol, deadline-vs-health
// accounting, entry lifecycle, and the response body cap.

func postSession(t *testing.T, base, query string, body []byte) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/parse/JSON?"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(raw)
}

// TestRouterSessionEarlyConclusionRelayed pins the high-severity
// misclassification: a document error on a NON-final chunk answers 200
// with Error set and no partial flag (checkpoint already deleted).
// That is a conclusion — the router must relay it verbatim, never
// consult the (gone) checkpoint, keep the healthy owner routable, and
// forget the session.
func TestRouterSessionEarlyConclusionRelayed(t *testing.T) {
	var ckptHits atomic.Int64
	stub := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/checkpoint") {
			ckptHits.Add(1)
			w.WriteHeader(http.StatusNotFound)
			io.WriteString(w, `{"error":"no stored checkpoint for session ec"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"grammar":"JSON","session":"ec","accepted":false,"error":"lex error at byte 3","bytes":3,"tokens":1}`)
	})
	rt, ts := stubRouter(t, Options{}, stub)

	resp, body := postSession(t, ts.URL, "session=ec", []byte("{]"))
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "lex error at byte 3") {
		t.Fatalf("early conclusion: status %d body %q, want the node's 200 answer relayed", resp.StatusCode, body)
	}
	if got := ckptHits.Load(); got != 0 {
		t.Fatalf("router fetched the checkpoint %d times after a conclusion, want 0", got)
	}
	m := rt.members[0]
	if m.state.Load() != stateReady || m.br.open(time.Now()) || m.forwardErrs.Value() != 0 {
		t.Fatalf("healthy owner penalized for a conclusion: state %s breaker-open %v errs %d",
			stateName(m.state.Load()), m.br.open(time.Now()), m.forwardErrs.Value())
	}
	if got := rt.m.retries.Value(); got != 0 {
		t.Fatalf("fleet_retries_total = %d after a conclusion, want 0", got)
	}
	if got := rt.sessions.placements(); got != nil {
		t.Fatalf("concluded session still tracked: %v", got)
	}
}

// checkpointedStub models a node's durable session state as the
// concatenation of applied chunk bodies, so double-applied chunks are
// directly visible in the "checkpoint" content.
type checkpointedStub struct {
	mu      sync.Mutex
	ckpt    string
	failGet bool
	resets  []string // "PUT:<image>" / "DELETE" in arrival order
}

func (c *checkpointedStub) serve(n int64, w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case strings.HasPrefix(r.URL.Path, "/v1/parse/"):
		b, _ := io.ReadAll(r.Body)
		c.ckpt += string(b)
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"grammar":"JSON","session":"s","partial":true,"bytes":`+
			strconv.Itoa(len(c.ckpt))+`,"tokens":1}`)
	case r.Method == http.MethodGet:
		if c.failGet {
			c.failGet = false
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		io.WriteString(w, c.ckpt)
	case r.Method == http.MethodPut:
		b, _ := io.ReadAll(r.Body)
		c.ckpt = string(b)
		c.resets = append(c.resets, "PUT:"+c.ckpt)
		io.WriteString(w, `{"grammar":"JSON","session":"s"}`)
	case r.Method == http.MethodDelete:
		c.ckpt = ""
		c.resets = append(c.resets, "DELETE")
		io.WriteString(w, `{"grammar":"JSON","session":"s"}`)
	default:
		w.WriteHeader(http.StatusNotFound)
	}
}

func (c *checkpointedStub) state() (ckpt string, resets []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ckpt, append([]string(nil), c.resets...)
}

// TestRouterSessionVoidedAckResetsOwner pins the double-apply fix: a
// chunk the owner persisted but whose ack was voided (checkpoint fetch
// failed) must not be blindly re-sent to the recovered owner on the
// client's retry — the router resets the owner to the cached image
// (the acked prefix) first.
func TestRouterSessionVoidedAckResetsOwner(t *testing.T) {
	cs := &checkpointedStub{}
	stub := newStub(t, cs.serve)
	rt, ts := stubRouter(t, Options{}, stub)

	// Chunk A acks cleanly: node holds "A", router caches "A".
	if resp, body := postSession(t, ts.URL, "session=s", []byte("A")); resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk A: status %d body %q", resp.StatusCode, body)
	}
	// Chunk B lands on the node, but the ack-fetch fails: the ack is
	// voided, and with no other member the request fails upstream.
	cs.mu.Lock()
	cs.failGet = true
	cs.mu.Unlock()
	if resp, _ := postSession(t, ts.URL, "session=s", []byte("B")); resp.StatusCode == http.StatusOK {
		t.Fatal("voided-ack chunk answered 200")
	}
	if ckpt, _ := cs.state(); ckpt != "AB" {
		t.Fatalf("node checkpoint %q after voided chunk, want AB (chunk persisted, ack lost)", ckpt)
	}
	// The owner answered the failed fetch itself — a live node must not
	// be flipped straight to down for it.
	if m := rt.members[0]; m.state.Load() != stateReady {
		t.Fatalf("owner marked %s after a non-transport fetch failure, want ready", stateName(m.state.Load()))
	}
	// The client retries chunk B. Without the reset the node would hold
	// "ABB"; with it, the router PUTs the cached "A" back first.
	if resp, body := postSession(t, ts.URL, "session=s", []byte("B")); resp.StatusCode != http.StatusOK {
		t.Fatalf("retried chunk B: status %d body %q", resp.StatusCode, body)
	}
	ckpt, resets := cs.state()
	if ckpt != "AB" {
		t.Fatalf("node checkpoint %q after retry, want AB exactly once (resets: %v)", ckpt, resets)
	}
	if len(resets) != 1 || resets[0] != "PUT:A" {
		t.Fatalf("resets %v, want exactly one PUT of the acked prefix \"A\"", resets)
	}
	// And the stream continues normally afterwards.
	if resp, _ := postSession(t, ts.URL, "session=s", []byte("C")); resp.StatusCode != http.StatusOK {
		t.Fatal("chunk C after recovery failed")
	}
	if ckpt, _ := cs.state(); ckpt != "ABC" {
		t.Fatalf("final node checkpoint %q, want ABC", ckpt)
	}
}

// TestRouterSessionFirstChunkReset pins the no-acked-bytes variant:
// when the voided chunk was the session's first (nothing cached to PUT
// back), the reset is a DELETE of whatever un-acked checkpoint the
// node holds.
func TestRouterSessionFirstChunkReset(t *testing.T) {
	cs := &checkpointedStub{failGet: true} // first ack-fetch fails
	stub := newStub(t, cs.serve)
	_, ts := stubRouter(t, Options{}, stub)

	if resp, _ := postSession(t, ts.URL, "session=s", []byte("A")); resp.StatusCode == http.StatusOK {
		t.Fatal("voided first chunk answered 200")
	}
	if resp, body := postSession(t, ts.URL, "session=s", []byte("A")); resp.StatusCode != http.StatusOK {
		t.Fatalf("retried first chunk: status %d body %q", resp.StatusCode, body)
	}
	ckpt, resets := cs.state()
	if ckpt != "A" {
		t.Fatalf("node checkpoint %q after retry, want A exactly once (resets: %v)", ckpt, resets)
	}
	if len(resets) != 1 || resets[0] != "DELETE" {
		t.Fatalf("resets %v, want exactly one DELETE", resets)
	}
}

// TestRouterDeadlineMidFailoverSparesNodes pins deadline accounting in
// placeSession: when the request's deadline expires while shipping a
// checkpoint to a replacement, the router answers 504 without charging
// the replacement — one slow request must not cascade healthy members
// to down.
func TestRouterDeadlineMidFailoverSparesNodes(t *testing.T) {
	script := func(posts *atomic.Int64) func(n int64, w http.ResponseWriter, r *http.Request) {
		return func(n int64, w http.ResponseWriter, r *http.Request) {
			switch {
			case r.Method == http.MethodPost:
				if posts.Add(1) == 1 {
					w.Header().Set("Content-Type", "application/json")
					io.WriteString(w, `{"grammar":"JSON","session":"s","partial":true,"bytes":1,"tokens":1}`)
					return
				}
				// Later chunks: die mid-connection (transport error, live ctx).
				c, _, err := w.(http.Hijacker).Hijack()
				if err == nil {
					c.Close()
				}
			case r.Method == http.MethodGet:
				w.Header().Set("Content-Type", "application/octet-stream")
				io.WriteString(w, "img")
			case r.Method == http.MethodPut:
				// The replacement is slow enough to outlive the request.
				time.Sleep(400 * time.Millisecond)
				io.WriteString(w, `{"grammar":"JSON","session":"s"}`)
			}
		}
	}
	var postsA, postsB atomic.Int64
	var putA, putB atomic.Int64
	a := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut {
			putA.Add(1)
		}
		script(&postsA)(n, w, r)
	})
	b := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut {
			putB.Add(1)
		}
		script(&postsB)(n, w, r)
	})
	rt, ts := stubRouter(t, Options{RequestTimeout: 150 * time.Millisecond}, a, b)

	if resp, body := postSession(t, ts.URL, "session=s", []byte("A")); resp.StatusCode != http.StatusOK {
		t.Fatalf("chunk 1: status %d body %q", resp.StatusCode, body)
	}
	resp, _ := postSession(t, ts.URL, "session=s", []byte("B"))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline mid-failover: status %d, want 504", resp.StatusCode)
	}
	// The node that received the (timed-out) checkpoint ship must not be
	// charged a forward failure.
	puts := []*atomic.Int64{&putA, &putB}
	var shipped *member
	for i, st := range []*stubNode{a, b} {
		if puts[i].Load() == 0 {
			continue
		}
		for _, m := range rt.members {
			if "http://"+m.name == st.ts.URL {
				shipped = m
			}
		}
	}
	if shipped == nil {
		t.Fatal("no node received the checkpoint ship")
	}
	if shipped.forwardErrs.Value() != 0 || shipped.br.open(time.Now()) {
		t.Fatalf("replacement charged for the router's own deadline: errs %d breaker-open %v",
			shipped.forwardErrs.Value(), shipped.br.open(time.Now()))
	}
}

// TestRouterSessionIdleSweep pins the table lifecycle: a session
// nobody concludes is reaped after SessionIdleTTL instead of pinning
// its cached checkpoint image forever.
func TestRouterSessionIdleSweep(t *testing.T) {
	cs := &checkpointedStub{}
	stub := newStub(t, cs.serve)
	rt, ts := stubRouter(t, Options{SessionIdleTTL: 60 * time.Millisecond, ProbeInterval: 20 * time.Millisecond}, stub)

	if resp, _ := postSession(t, ts.URL, "session=s", []byte("A")); resp.StatusCode != http.StatusOK {
		t.Fatal("chunk failed")
	}
	if got := rt.sessions.placements(); got == nil {
		t.Fatal("session not tracked after a chunk")
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.sessions.placements() != nil {
		if time.Now().After(deadline) {
			t.Fatalf("idle session never swept: %v", rt.sessions.placements())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRouterOversizedResponse502 pins the body cap on the response
// side: a downstream answer larger than MaxBodyBytes fails the request
// with 502 instead of relaying a silently truncated body as 200 — and
// the anomaly is not a node-health event.
func TestRouterOversizedResponse502(t *testing.T) {
	stub := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(bytes.Repeat([]byte("x"), 4096))
	})
	rt, ts := stubRouter(t, Options{MaxBodyBytes: 1024}, stub)

	resp, err := http.Post(ts.URL+"/v1/parse/JSON", "application/octet-stream", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("oversized response: status %d (body %d bytes), want 502", resp.StatusCode, len(body))
	}
	m := rt.members[0]
	if m.state.Load() != stateReady || m.forwardErrs.Value() != 0 {
		t.Fatalf("node penalized for the router's own cap: state %s errs %d",
			stateName(m.state.Load()), m.forwardErrs.Value())
	}
}

// TestRouterSessionConcludedByDepthDropsEntry pins drop-on-conclusion
// for the non-200 endings: a 422 depth overflow ends the session on
// the node, so the router entry must go too.
func TestRouterSessionConcludedByDepthDropsEntry(t *testing.T) {
	stub := newStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		io.WriteString(w, `{"error":"input exceeds the provisioned stack depth"}`)
	})
	rt, ts := stubRouter(t, Options{}, stub)

	resp, _ := postSession(t, ts.URL, "session=deep", []byte("((((("))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 relayed", resp.StatusCode)
	}
	if got := rt.sessions.placements(); got != nil {
		t.Fatalf("422-concluded session still tracked: %v", got)
	}
}
