package fleet

import (
	"context"
	"net/http"
	"time"
)

// Hedged forwards. A gray node is slow, not broken: it answers 200
// eventually, so neither the breaker nor the prober ever fires, and a
// request placed on it simply eats the latency. The hedge bounds that
// cost for idempotent work: when the primary has not answered within
// the hedge delay (the observed forward p95, so hedges fire on the
// slow tail only), the identical request is fired at the next-ranked
// node, the first answer wins, and the loser's leg is canceled.
//
// Only whole-document parses are hedged. They are idempotent — the
// same bytes produce the same verdict and mutate nothing — so the
// worst case of a hedge is wasted work on the losing node.
// Durable-session chunks are the opposite (each chunk advances
// checkpoint state) and never take this path.

// hedgeLeg is one outbound attempt of a hedged forward.
type hedgeLeg struct {
	m      *member
	cancel context.CancelFunc

	status int
	hdr    http.Header
	body   []byte
	err    error
	legNS  int64
	// canceledByRouter marks a loser we canceled ourselves — such a
	// leg's error is manufactured by the router and must never charge
	// the member's breaker.
	canceledByRouter bool
}

// hedgedForward forwards path to primary, hedging to backup after the
// hedge delay. Returns the winning leg's member, answer, and own
// elapsed time (not including any time spent waiting on the other
// leg). Losing legs that failed genuinely are charged and added to
// tried here; the returned leg is never charged — the caller's status
// switch owns that, exactly as in the unhedged path.
func (rt *Router) hedgedForward(ctx context.Context, primary, backup *member, path string, body []byte, trace string, tried map[*member]bool) (*member, int, http.Header, []byte, int64, error) {
	if backup == nil {
		t0 := time.Now()
		status, hdr, respBody, err := rt.roundTrip(ctx, primary, http.MethodPost, path, body, trace)
		return primary, status, hdr, respBody, time.Since(t0).Nanoseconds(), err
	}

	results := make(chan *hedgeLeg, 2) // buffered: a loser's goroutine never blocks
	launch := func(m *member) *hedgeLeg {
		lctx, cancel := context.WithCancel(ctx)
		l := &hedgeLeg{m: m, cancel: cancel}
		go func() {
			t0 := time.Now()
			l.status, l.hdr, l.body, l.err = rt.roundTrip(lctx, m, http.MethodPost, path, body, trace)
			l.legNS = time.Since(t0).Nanoseconds()
			if l.err != nil && lctx.Err() != nil && ctx.Err() == nil {
				l.canceledByRouter = true
			}
			results <- l
		}()
		return l
	}

	p := launch(primary)
	var b *hedgeLeg
	var pDone, bDone bool
	timer := time.NewTimer(rt.hedgeDelay())
	defer timer.Stop()
	for {
		select {
		case <-timer.C:
			if b == nil && ctx.Err() == nil {
				b = launch(backup)
			}
		case l := <-results:
			if l == p {
				pDone = true
			} else {
				bDone = true
			}
			if l.err == nil {
				// First definitive answer wins; the other leg is canceled
				// and its manufactured error charges nobody.
				if b != nil {
					if l == b {
						rt.m.hedgeTotal[hedgeWin].Inc()
					} else {
						rt.m.hedgeTotal[hedgeLoss].Inc()
					}
				}
				p.cancel()
				if b != nil {
					b.cancel()
				}
				return l.m, l.status, l.hdr, l.body, l.legNS, nil
			}
			if l.canceledByRouter {
				continue
			}
			// A genuine failure. If the sibling leg is still in flight,
			// charge this one here (the caller only sees the returned leg)
			// and wait the sibling out; otherwise hand the failure back
			// uncharged for the caller's retry loop.
			siblingPending := (l == p && b != nil && !bDone) || (l == b && !pDone)
			if siblingPending {
				if ctx.Err() == nil {
					l.m.noteForwardFailure(time.Now(), true)
					tried[l.m] = true
				}
				continue
			}
			if b != nil {
				rt.m.hedgeTotal[hedgeError].Inc()
			}
			p.cancel()
			if b != nil {
				b.cancel()
			}
			return l.m, 0, nil, nil, l.legNS, l.err
		}
	}
}

// pickBackup is the hedge target: the best-ranked usable member that
// is neither the primary nor already tried this request.
func (rt *Router) pickBackup(key uint64, tried map[*member]bool, primary *member) *member {
	usable, _ := rt.candidatesFor(key)
	for _, m := range usable {
		if m != primary && !tried[m] {
			return m
		}
	}
	return nil
}
