package swparse

import (
	"bytes"
	"encoding/xml"
	"errors"
	"io"
	"strings"
	"testing"

	"aspen/internal/lang"
	"aspen/internal/xmlgen"
)

func TestCountsSimple(t *testing.T) {
	doc := []byte(`<?xml version="1.0"?><root a="1" b="2"><child>hello</child><leaf/></root>`)
	for _, f := range []func([]byte) (Counts, Metrics, error){ExpatLike, XercesLike} {
		c, m, err := f(doc)
		if err != nil {
			t.Fatal(err)
		}
		if c.Elements != 3 {
			t.Errorf("Elements = %d, want 3", c.Elements)
		}
		if c.Attributes != 2 {
			t.Errorf("Attributes = %d, want 2", c.Attributes)
		}
		if c.Characters != 5 {
			t.Errorf("Characters = %d, want 5", c.Characters)
		}
		if m.Branches <= 0 || m.StateDispatches != int64(len(doc)) {
			t.Errorf("metrics = %+v", m)
		}
		if m.MaxDepth != 2 {
			t.Errorf("MaxDepth = %d, want 2", m.MaxDepth)
		}
	}
}

func TestSampleDocument(t *testing.T) {
	c, _, err := XercesLike([]byte(lang.XMLSample))
	if err != nil {
		t.Fatal(err)
	}
	// catalog, 2×book, title×2, price, tags, tag×2, blurb, empty: count
	// elements by hand: catalog, book, title, price, tags, tag, tag,
	// blurb, book, title, empty = 11.
	if c.Elements != 11 {
		t.Errorf("Elements = %d, want 11", c.Elements)
	}
	if c.Attributes != 6 { // xmlns, count, id, lang, currency, id
		t.Errorf("Attributes = %d, want 6", c.Attributes)
	}
	if c.Characters == 0 {
		t.Error("no characters counted")
	}
}

func TestCDATACountsCharacters(t *testing.T) {
	c, _, err := ExpatLike([]byte(`<a><![CDATA[x<y>&z]]></a>`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Characters != 6 {
		t.Errorf("Characters = %d, want 6", c.Characters)
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		`<a>`, `</a>`, `<a></b></a>x`, `<a`, `<a b></a>`, `<a b=x></a>`,
		`<1a/>`, `text<a/>`, `<a/><b/>extra`, `<a><!bogus></a>`, `<a b="1" `,
	}
	for _, doc := range bad {
		if _, _, err := ExpatLike([]byte(doc)); err == nil {
			t.Errorf("ExpatLike(%q) should fail", doc)
		}
	}
}

func TestValidationOnlyInXerces(t *testing.T) {
	// Mismatched tags: well-formed nesting arity but wrong names —
	// Expat-like (non-validating) accepts, Xerces-like rejects.
	doc := []byte(`<a><b></c></a>`)
	if _, _, err := ExpatLike(doc); err != nil {
		t.Errorf("ExpatLike should accept name mismatch: %v", err)
	}
	_, _, err := XercesLike(doc)
	var se *SyntaxError
	if !errors.As(err, &se) || !strings.Contains(se.Msg, "mismatched") {
		t.Errorf("XercesLike err = %v, want mismatch", err)
	}
	// Duplicate attributes likewise.
	dup := []byte(`<a x="1" x="2"></a>`)
	if _, _, err := ExpatLike(dup); err != nil {
		t.Errorf("ExpatLike should accept duplicate attrs: %v", err)
	}
	if _, _, err := XercesLike(dup); err == nil {
		t.Error("XercesLike should reject duplicate attrs")
	}
}

func TestUnclosedElements(t *testing.T) {
	_, _, err := XercesLike([]byte(`<a><b></b>`))
	if !errors.Is(err, ErrUnclosed) {
		t.Errorf("err = %v, want ErrUnclosed", err)
	}
}

func TestValidatorCostsMoreBranches(t *testing.T) {
	doc := []byte(lang.XMLSample)
	_, me, err := ExpatLike(doc)
	if err != nil {
		t.Fatal(err)
	}
	_, mx, err := XercesLike(doc)
	if err != nil {
		t.Fatal(err)
	}
	if mx.Branches <= me.Branches {
		t.Errorf("validator branches %d !> non-validating %d", mx.Branches, me.Branches)
	}
}

func TestBranchesGrowWithMarkupDensity(t *testing.T) {
	// Same total size, different markup density: denser markup must cost
	// more branches per byte (the Fig. 2 trend).
	sparse := []byte("<r>" + strings.Repeat("x", 4000) + "</r>")
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 250; i++ {
		b.WriteString(`<a k="v">x</a>`)
	}
	b.WriteString("</r>")
	dense := []byte(b.String())

	_, ms, err := XercesLike(sparse)
	if err != nil {
		t.Fatal(err)
	}
	_, md, err := XercesLike(dense)
	if err != nil {
		t.Fatal(err)
	}
	s := ms.BranchesPerByte(len(sparse))
	d := md.BranchesPerByte(len(dense))
	if d <= s {
		t.Errorf("dense %f branches/byte !> sparse %f", d, s)
	}
	t.Logf("branches/byte: sparse %.2f, dense %.2f", s, d)
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, _, err := ExpatLike([]byte(`<a><`))
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v", err)
	}
	if se.Pos == 0 || se.Error() == "" {
		t.Errorf("error = %+v", se)
	}
}

// Cross-validate against the standard library's encoding/xml decoder on
// the generated corpus: element and attribute counts must agree (the
// stdlib is a third, independent implementation).
func TestAgainstStdlibXML(t *testing.T) {
	docs := xmlgen.Corpus(4 << 10)
	for _, d := range docs {
		var elems, attrs int
		dec := xml.NewDecoder(bytes.NewReader(d.Data))
		for {
			tok, err := dec.Token()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: stdlib rejects: %v", d.Name, err)
			}
			if se, ok := tok.(xml.StartElement); ok {
				elems++
				attrs += len(se.Attr)
			}
		}
		c, _, err := XercesLike(d.Data)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if c.Elements != elems || c.Attributes != attrs {
			t.Errorf("%s: swparse %d/%d vs stdlib %d/%d elements/attrs",
				d.Name, c.Elements, c.Attributes, elems, attrs)
		}
	}
}
