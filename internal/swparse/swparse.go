// Package swparse provides the conventional software XML parsers ASPEN
// is evaluated against (paper §II-C, §V-A): an Expat-like non-validating
// streaming parser and a Xerces-like validating parser. Both are real
// byte-at-a-time SAX parsers implementing the SAXCount application
// (element/attribute/content-byte counts) with the branchy nested-switch
// control flow the paper profiles in Fig. 2; instrumentation counts
// branch decisions so branches-per-byte can be reported alongside
// measured wall-clock time.
package swparse

import (
	"errors"
	"fmt"
)

// Counts is the SAXCount result: syntactic verification plus counts of
// elements, attributes, and content bytes.
type Counts struct {
	Elements   int
	Attributes int
	Characters int
}

// Metrics instruments the parser's control flow.
type Metrics struct {
	// Branches counts conditional decisions taken (the Fig. 2 metric).
	Branches int64
	// StateDispatches counts top-level state-machine dispatches (one per
	// byte in streaming operation).
	StateDispatches int64
	// MaxDepth is the deepest element nesting observed.
	MaxDepth int
}

// BranchesPerByte normalizes for Fig. 2.
func (m Metrics) BranchesPerByte(bytes int) float64 {
	if bytes == 0 {
		return 0
	}
	return float64(m.Branches) / float64(bytes)
}

// SyntaxError reports malformed input.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("xml syntax error at %d: %s", e.Pos, e.Msg) }

// ErrUnclosed reports missing close tags at EOF.
var ErrUnclosed = errors.New("swparse: unclosed elements at end of input")

// parser state machine states.
type pstate uint8

const (
	sContent pstate = iota
	sSeenLT
	sTagName
	sInTag
	sAttrName
	sAttrEq
	sAttrValue
	sEmptyTag
	sCloseName
	sBang
	sComment
	sCDATA
	sDoctype
	sPI
)

// parser is the shared streaming core. validate enables the Xerces-like
// checks (tag-name matching via an element stack, attribute-name
// tracking, stricter name rules).
type parser struct {
	validate bool

	st       pstate
	counts   Counts
	met      Metrics
	pos      int
	depth    int
	quote    byte
	nameBuf  []byte
	elemName []byte
	stack    [][]byte
	seen     map[string]bool // attribute names in the current tag
	hadRoot  bool
	inProlog bool

	// sub-state counters for multi-byte constructs
	dashes  int
	brCount int
	qmark   bool
}

func isNameStart(b byte) bool {
	return b == '_' || b == ':' || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
}

func isNameChar(b byte) bool {
	return isNameStart(b) || b == '-' || b == '.' || (b >= '0' && b <= '9')
}

func isSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\r' || b == '\n' }

// br accounts n branch decisions.
func (p *parser) br(n int64) { p.met.Branches += n }

func (p *parser) fail(msg string) error { return &SyntaxError{Pos: p.pos, Msg: msg} }

// run processes the document.
func (p *parser) run(doc []byte) (Counts, Metrics, error) {
	p.st = sContent
	p.inProlog = true
	if p.validate {
		p.seen = map[string]bool{}
	}
	for i := 0; i < len(doc); i++ {
		p.pos = i
		b := doc[i]
		p.met.StateDispatches++
		p.br(1) // top-level state switch
		switch p.st {
		case sContent:
			p.br(1)
			if b == '<' {
				p.st = sSeenLT
			} else {
				if p.depth > 0 {
					p.counts.Characters++
				} else {
					p.br(1)
					if !isSpace(b) {
						return p.counts, p.met, p.fail("content outside root element")
					}
				}
			}
		case sSeenLT:
			p.br(3)
			switch {
			case b == '/':
				p.st = sCloseName
				p.nameBuf = p.nameBuf[:0]
			case b == '!':
				p.st = sBang
				p.dashes = 0
				p.brCount = 0
				p.nameBuf = p.nameBuf[:0]
			case b == '?':
				p.st = sPI
				p.qmark = false
			case isNameStart(b):
				p.st = sTagName
				p.nameBuf = append(p.nameBuf[:0], b)
			default:
				return p.counts, p.met, p.fail("bad character after '<'")
			}
		case sTagName:
			p.br(2)
			switch {
			case isNameChar(b):
				p.nameBuf = append(p.nameBuf, b)
			case isSpace(b):
				p.openElement()
				p.st = sInTag
			case b == '>':
				p.openElement()
				p.pushElement()
				p.st = sContent
			case b == '/':
				p.openElement()
				p.st = sEmptyTag
			default:
				return p.counts, p.met, p.fail("bad character in tag name")
			}
		case sInTag:
			p.br(3)
			switch {
			case isSpace(b):
			case b == '>':
				p.pushElement()
				p.st = sContent
			case b == '/':
				p.st = sEmptyTag
			case isNameStart(b):
				p.st = sAttrName
				p.nameBuf = append(p.nameBuf[:0], b)
			default:
				return p.counts, p.met, p.fail("bad character in tag")
			}
		case sAttrName:
			p.br(2)
			switch {
			case isNameChar(b):
				p.nameBuf = append(p.nameBuf, b)
			case b == '=' || isSpace(b):
				if err := p.finishAttrName(); err != nil {
					return p.counts, p.met, err
				}
				if b == '=' {
					p.st = sAttrValue
					p.quote = 0
				} else {
					p.st = sAttrEq
				}
			default:
				return p.counts, p.met, p.fail("bad character in attribute name")
			}
		case sAttrEq:
			p.br(2)
			switch {
			case isSpace(b):
			case b == '=':
				p.st = sAttrValue
				p.quote = 0
			default:
				return p.counts, p.met, p.fail("expected '='")
			}
		case sAttrValue:
			p.br(2)
			if p.quote == 0 {
				switch {
				case isSpace(b):
				case b == '"' || b == '\'':
					p.quote = b
				default:
					return p.counts, p.met, p.fail("expected quoted attribute value")
				}
			} else if b == p.quote {
				p.counts.Attributes++
				p.st = sInTag
			}
		case sEmptyTag:
			p.br(1)
			if b != '>' {
				return p.counts, p.met, p.fail("expected '>' after '/'")
			}
			// Element already counted by openElement; empty elements
			// are not pushed.
			p.noteRoot()
			p.nameBuf = p.nameBuf[:0]
			p.st = sContent
		case sCloseName:
			p.br(2)
			switch {
			case isNameChar(b) || isNameStart(b):
				p.nameBuf = append(p.nameBuf, b)
			case b == '>' || isSpace(b):
				if b != '>' {
					// skip trailing space then require '>': simplify by
					// accepting only immediate '>' after optional spaces
					continue
				}
				if err := p.closeElement(); err != nil {
					return p.counts, p.met, err
				}
				p.st = sContent
			default:
				return p.counts, p.met, p.fail("bad character in close tag")
			}
		case sBang:
			// Dispatch <!-- vs <![CDATA[ vs <!DOCTYPE by prefix.
			p.br(3)
			p.nameBuf = append(p.nameBuf, b)
			switch {
			case len(p.nameBuf) <= 1 && b == '-':
			case len(p.nameBuf) == 2 && string(p.nameBuf) == "--":
				p.st = sComment
				p.dashes = 0
				p.nameBuf = p.nameBuf[:0]
			case len(p.nameBuf) == 7 && string(p.nameBuf) == "[CDATA[":
				p.st = sCDATA
				p.brCount = 0
				p.nameBuf = p.nameBuf[:0]
			case len(p.nameBuf) == 7 && string(p.nameBuf) == "DOCTYPE":
				p.st = sDoctype
				p.nameBuf = p.nameBuf[:0]
			case len(p.nameBuf) > 7:
				return p.counts, p.met, p.fail("unrecognized markup declaration")
			}
		case sComment:
			p.br(2)
			switch {
			case b == '-':
				p.dashes++
			case b == '>' && p.dashes >= 2:
				p.st = sContent
				p.nameBuf = p.nameBuf[:0]
			default:
				p.dashes = 0
			}
		case sCDATA:
			p.br(2)
			switch {
			case b == ']':
				p.brCount++
			case b == '>' && p.brCount >= 2:
				p.st = sContent
			default:
				if p.depth > 0 {
					p.counts.Characters++
				}
				p.brCount = 0
			}
		case sDoctype:
			p.br(1)
			if b == '>' {
				p.st = sContent
				p.nameBuf = p.nameBuf[:0]
			}
		case sPI:
			p.br(2)
			switch {
			case b == '?':
				p.qmark = true
			case b == '>' && p.qmark:
				p.st = sContent
			default:
				p.qmark = false
			}
		}
	}
	p.pos = len(doc)
	if p.st != sContent {
		return p.counts, p.met, p.fail("truncated document")
	}
	if p.depth != 0 {
		return p.counts, p.met, ErrUnclosed
	}
	if !p.hadRoot {
		return p.counts, p.met, p.fail("no root element")
	}
	return p.counts, p.met, nil
}

func (p *parser) openElement() {
	p.counts.Elements++
	p.elemName = append(p.elemName[:0], p.nameBuf...)
	p.nameBuf = p.nameBuf[:0]
	if p.validate {
		for k := range p.seen {
			delete(p.seen, k)
		}
	}
}

func (p *parser) noteRoot() {
	if p.depth == 0 {
		p.hadRoot = true
	}
	p.inProlog = false
}

func (p *parser) pushElement() {
	p.noteRoot()
	p.depth++
	if p.depth > p.met.MaxDepth {
		p.met.MaxDepth = p.depth
	}
	if p.validate {
		p.stack = append(p.stack, append([]byte(nil), p.elemName...))
		p.br(int64(len(p.elemName))) // name copy & intern checks
	}
}

func (p *parser) closeElement() error {
	if p.depth == 0 {
		p.br(1)
		return p.fail("close tag without open element")
	}
	p.depth--
	if p.validate {
		top := p.stack[len(p.stack)-1]
		p.stack = p.stack[:len(p.stack)-1]
		p.br(int64(len(top))) // name comparison
		if string(top) != string(p.nameBuf) {
			return p.fail(fmt.Sprintf("mismatched close tag: <%s> vs </%s>", top, p.nameBuf))
		}
	}
	p.nameBuf = p.nameBuf[:0]
	return nil
}

func (p *parser) finishAttrName() error {
	if p.validate {
		name := string(p.nameBuf)
		p.br(2) // hash + lookup
		if p.seen[name] {
			return p.fail("duplicate attribute " + name)
		}
		p.seen[name] = true
	}
	p.nameBuf = p.nameBuf[:0]
	return nil
}

// ExpatLike runs the non-validating streaming parser (the Expat
// stand-in).
func ExpatLike(doc []byte) (Counts, Metrics, error) {
	p := &parser{validate: false}
	return p.run(doc)
}

// XercesLike runs the validating parser (the Xerces-C SAXCount
// stand-in): everything ExpatLike checks plus tag-name matching and
// duplicate-attribute detection.
func XercesLike(doc []byte) (Counts, Metrics, error) {
	p := &parser{validate: true}
	return p.run(doc)
}
