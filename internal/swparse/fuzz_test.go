package swparse

import (
	"testing"

	"aspen/internal/lang"
)

// Native fuzz targets: `go test -fuzz=FuzzParsers` explores; the seed
// corpus runs on every plain `go test`.

func FuzzParsers(f *testing.F) {
	seeds := []string{
		lang.XMLSample,
		`<a x="1">t<b/></a>`,
		`<?xml version="1.0"?><r><![CDATA[x]]></r>`,
		`<!DOCTYPE d><r><!-- c --></r>`,
		`<a></b>`, `<<a>`, `<a b=></a>`, ``, `<`, `plain`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, doc []byte) {
		// Neither parser may panic; the validator must reject at least
		// everything the non-validating parser rejects.
		ce, _, errE := ExpatLike(doc)
		cx, _, errX := XercesLike(doc)
		if errE != nil && errX == nil {
			t.Fatalf("validator accepted what expat rejected: %q (%v)", doc, errE)
		}
		if errE == nil && errX == nil {
			// On agreement, the counts must match (validation only adds
			// checks, not semantics).
			if ce != cx {
				t.Fatalf("counts diverge on %q: %+v vs %+v", doc, ce, cx)
			}
		}
	})
}
