// Package dom constructs a Document Object Model tree from an ASPEN XML
// parse — the post-processing step the paper describes in §IV-E ("a DOM
// tree representation can be constructed by performing a linear pass
// over the DPDA reports") and leaves as future work. The builder
// consumes the reduction report stream of the compiled XML hDPDA
// together with the lexer's token stream, building the element tree in
// one linear pass, and implements the richer semantic check the paper
// mentions: verifying that opening and closing tag names match.
package dom

import (
	"fmt"
	"strings"

	"aspen/internal/compile"
	"aspen/internal/core"
	"aspen/internal/lang"
	"aspen/internal/lexer"
)

// NodeKind classifies DOM nodes.
type NodeKind uint8

const (
	// ElementNode is an XML element.
	ElementNode NodeKind = iota
	// TextNode is character data (TEXT or CDATA).
	TextNode
	// CommentNode is a comment.
	CommentNode
	// PINode is a processing instruction.
	PINode
)

func (k NodeKind) String() string {
	switch k {
	case ElementNode:
		return "element"
	case TextNode:
		return "text"
	case CommentNode:
		return "comment"
	case PINode:
		return "pi"
	default:
		return "?"
	}
}

// Attr is one attribute.
type Attr struct {
	Name  string
	Value string
}

// Node is a DOM node.
type Node struct {
	Kind     NodeKind
	Name     string // element tag name
	Text     string // text/comment/PI content
	Attrs    []Attr
	Children []*Node
	Parent   *Node
}

// Document is a parsed XML document.
type Document struct {
	Root *Node
	// Prolog holds comments/PIs before the root element.
	Prolog []*Node
	// Trailer holds comments/PIs after the root element.
	Trailer []*Node
	// Elements, Attributes, Characters are SAXCount-compatible tallies.
	Elements   int
	Attributes int
	Characters int
}

// MismatchError reports an open/close tag-name mismatch — the semantic
// check layered above syntactic parsing (paper §II-C, §IV-E).
type MismatchError struct {
	Open, Close string
	Pos         int // token index of the close tag name
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("dom: element <%s> closed by </%s> (token %d)", e.Open, e.Close, e.Pos)
}

// Builder incrementally constructs a Document from an XML parse.
type Builder struct {
	l     *lang.Language
	cm    *compile.Compiled
	input []byte
	toks  []lexer.Token

	doc          *Document
	stack        []*Node // open elements
	pendingAttrs []Attr  // Attr reductions awaiting their tag
	err          error
}

// Build parses input with the compiled XML machine and constructs the
// DOM in a single linear pass over the reduction reports.
func Build(l *lang.Language, cm *compile.Compiled, input []byte) (*Document, core.Result, error) {
	lx, err := l.Lexer()
	if err != nil {
		return nil, core.Result{}, err
	}
	toks, _, err := lx.Tokenize(input)
	if err != nil {
		return nil, core.Result{}, err
	}
	syms, err := l.Syms(toks)
	if err != nil {
		return nil, core.Result{}, err
	}
	b := &Builder{
		l: l, cm: cm, input: input, toks: toks,
		doc: &Document{},
	}
	res, err := cm.ParseTokens(syms, core.ExecOptions{
		OnReport: b.onReport,
	})
	if err != nil {
		return nil, res, err
	}
	if b.err != nil {
		return nil, res, b.err
	}
	if !res.Accepted {
		return nil, res, fmt.Errorf("dom: document rejected after %d tokens", res.Consumed)
	}
	if len(b.stack) != 0 {
		return nil, res, fmt.Errorf("dom: %d unclosed elements", len(b.stack))
	}
	return b.doc, res, nil
}

// lexeme returns token i's text.
func (b *Builder) lexeme(i int) string {
	if i < 0 || i >= len(b.toks) {
		return ""
	}
	return b.toks[i].Text(b.input)
}

// attach places a completed node under the current element, or in the
// prolog/trailer when no element is open.
func (b *Builder) attach(n *Node) {
	if len(b.stack) > 0 {
		top := b.stack[len(b.stack)-1]
		n.Parent = top
		top.Children = append(top.Children, n)
		return
	}
	if b.doc.Root == nil {
		b.doc.Prolog = append(b.doc.Prolog, n)
	} else {
		b.doc.Trailer = append(b.doc.Trailer, n)
	}
}

// onReport handles one reduction report. Report.Pos is the number of
// tokens consumed when the reduction fired; because LR reductions occur
// after the lookahead was read, the production's right-hand-side tokens
// end at Pos-2 (the ⊣-extended stream makes Pos-1 the lookahead).
func (b *Builder) onReport(r core.Report) {
	if b.err != nil || r.Code < 0 || int(r.Code) >= len(b.cm.Grammar.Productions) {
		return
	}
	g := b.cm.Grammar
	p := g.Productions[r.Code]
	lhs := g.SymName(p.Lhs)
	// Index of the last token of the reduced production: the machine has
	// consumed Pos tokens including the one-token lookahead (the ⊣
	// appended by ParseTokens keeps this valid at end of input).
	last := r.Pos - 2
	switch lhs {
	case "STag":
		// STag : LT NAME Attrs GT — the NAME is right after the LT.
		n := &Node{Kind: ElementNode, Name: b.tagName(last)}
		b.takeAttrs(n)
		b.place(n)
		b.stack = append(b.stack, n)
		b.doc.Elements++
	case "EmptyElem":
		// EmptyElem : LT NAME Attrs SLASHGT.
		n := &Node{Kind: ElementNode, Name: b.tagName(last)}
		b.takeAttrs(n)
		b.place(n)
		b.doc.Elements++
	case "ETag":
		// ETag : LTSLASH NAME GT.
		name := b.lexeme(last - 1)
		if len(b.stack) == 0 {
			b.err = fmt.Errorf("dom: close tag </%s> with no open element", name)
			return
		}
		top := b.stack[len(b.stack)-1]
		if top.Name != name {
			b.err = &MismatchError{Open: top.Name, Close: name, Pos: last - 1}
			return
		}
		b.stack = b.stack[:len(b.stack)-1]
	case "Attr":
		// Attr : NAME EQ STRING — stash on a pending list consumed by
		// the enclosing STag/EmptyElem (reductions fire before the tag
		// completes, so buffer them).
		val := strings.Trim(b.lexeme(last), `"'`)
		b.pendingAttrs = append(b.pendingAttrs, Attr{Name: b.lexeme(last - 2), Value: val})
		b.doc.Attributes++
	case "Item":
		// Item : Element | TEXT | COMMENT | CDATA | PI — single-token
		// alternatives attach content nodes.
		if len(p.Rhs) == 1 && g.IsTerminal(p.Rhs[0]) {
			b.attachTerminal(g.SymName(p.Rhs[0]), last)
		}
	case "Misc":
		// Misc : COMMENT | PI (prolog/trailer content).
		if len(p.Rhs) == 1 && g.IsTerminal(p.Rhs[0]) {
			b.attachTerminal(g.SymName(p.Rhs[0]), last)
		}
	}
}

func (b *Builder) attachTerminal(term string, tokIdx int) {
	text := b.lexeme(tokIdx)
	switch term {
	case "TEXT":
		b.attach(&Node{Kind: TextNode, Text: text})
		b.doc.Characters += len(text)
	case "CDATA":
		body := strings.TrimSuffix(strings.TrimPrefix(text, "<![CDATA["), "]]>")
		b.attach(&Node{Kind: TextNode, Text: body})
		b.doc.Characters += len(body)
	case "COMMENT":
		body := strings.TrimSuffix(strings.TrimPrefix(text, "<!--"), "-->")
		b.attach(&Node{Kind: CommentNode, Text: body})
	case "PI":
		b.attach(&Node{Kind: PINode, Text: text})
	}
}

// tagName finds the NAME token for a tag reduction ending at token
// `last` by scanning back to the opening LT/LTSLASH.
func (b *Builder) tagName(last int) string {
	for i := last; i >= 0; i-- {
		if b.toks[i].Name == "LT" || b.toks[i].Name == "LTSLASH" {
			if i+1 <= last {
				return b.lexeme(i + 1)
			}
			return ""
		}
	}
	return ""
}

// place attaches an element node: the first top-level element becomes
// the document root; everything else attaches to the open element.
func (b *Builder) place(n *Node) {
	if len(b.stack) == 0 && b.doc.Root == nil {
		b.doc.Root = n
		return
	}
	b.attach(n)
}

// takeAttrs moves buffered attributes onto n.
func (b *Builder) takeAttrs(n *Node) {
	n.Attrs = b.pendingAttrs
	b.pendingAttrs = nil
}

// Find returns the first descendant element with the given tag name
// (depth-first), or nil.
func (n *Node) Find(name string) *Node {
	if n == nil {
		return nil
	}
	if n.Kind == ElementNode && n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// Attr returns the value of the named attribute and whether it exists.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// InnerText concatenates all descendant text.
func (n *Node) InnerText() string {
	var b strings.Builder
	var walk func(x *Node)
	walk = func(x *Node) {
		if x.Kind == TextNode {
			b.WriteString(x.Text)
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(n)
	return b.String()
}

// String renders the subtree as indented structure for debugging.
func (n *Node) String() string {
	var b strings.Builder
	var walk func(x *Node, depth int)
	walk = func(x *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		switch x.Kind {
		case ElementNode:
			b.WriteString("<" + x.Name)
			for _, a := range x.Attrs {
				fmt.Fprintf(&b, " %s=%q", a.Name, a.Value)
			}
			b.WriteString(">\n")
			for _, c := range x.Children {
				walk(c, depth+1)
			}
		case TextNode:
			fmt.Fprintf(&b, "%q\n", x.Text)
		case CommentNode:
			fmt.Fprintf(&b, "<!--%s-->\n", x.Text)
		case PINode:
			fmt.Fprintf(&b, "%s\n", x.Text)
		}
	}
	walk(n, 0)
	return b.String()
}
