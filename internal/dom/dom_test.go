package dom

import (
	"errors"
	"strings"
	"testing"

	"aspen/internal/compile"
	"aspen/internal/lang"
	"aspen/internal/swparse"
	"aspen/internal/xmlgen"
)

func build(t *testing.T, doc string) (*Document, error) {
	t.Helper()
	l := lang.XML()
	cm, err := l.Compile(compile.OptAll)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := Build(l, cm, []byte(doc))
	return d, err
}

func TestBuildSimple(t *testing.T) {
	d, err := build(t, `<?xml version="1.0"?><!-- hi --><cat a="1" b='2'><k>v1</k><e/><!--c--><?pi x?></cat><!-- bye -->`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root == nil || d.Root.Name != "cat" {
		t.Fatalf("root = %+v", d.Root)
	}
	if len(d.Root.Attrs) != 2 {
		t.Fatalf("attrs = %+v", d.Root.Attrs)
	}
	if v, ok := d.Root.Attr("a"); !ok || v != "1" {
		t.Errorf("attr a = %q,%v", v, ok)
	}
	if v, ok := d.Root.Attr("b"); !ok || v != "2" {
		t.Errorf("attr b = %q,%v", v, ok)
	}
	if _, ok := d.Root.Attr("zz"); ok {
		t.Error("phantom attribute")
	}
	// Children: k element, e element, comment, pi.
	if len(d.Root.Children) != 4 {
		t.Fatalf("children = %d: %s", len(d.Root.Children), d.Root)
	}
	k := d.Root.Find("k")
	if k == nil || k.InnerText() != "v1" {
		t.Fatalf("k = %+v", k)
	}
	if d.Root.Children[2].Kind != CommentNode || d.Root.Children[2].Text != "c" {
		t.Errorf("comment = %+v", d.Root.Children[2])
	}
	if d.Root.Children[3].Kind != PINode {
		t.Errorf("pi = %+v", d.Root.Children[3])
	}
	// Prolog comment, trailer comment.
	if len(d.Prolog) != 1 || d.Prolog[0].Kind != CommentNode {
		t.Errorf("prolog = %+v", d.Prolog)
	}
	if len(d.Trailer) != 1 {
		t.Errorf("trailer = %+v", d.Trailer)
	}
	if d.Elements != 3 || d.Attributes != 2 {
		t.Errorf("counts = %+v", d)
	}
}

func TestBuildNested(t *testing.T) {
	d, err := build(t, `<a><b><c>deep</c></b><b2>x</b2></a>`)
	if err != nil {
		t.Fatal(err)
	}
	c := d.Root.Find("c")
	if c == nil || c.Parent == nil || c.Parent.Name != "b" {
		t.Fatalf("c = %+v", c)
	}
	if c.Parent.Parent != d.Root {
		t.Error("grandparent link broken")
	}
	if d.Root.InnerText() != "deepx" {
		t.Errorf("InnerText = %q", d.Root.InnerText())
	}
}

func TestCDATAText(t *testing.T) {
	d, err := build(t, `<a><![CDATA[x <&> y]]></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Root.InnerText(); got != "x <&> y" {
		t.Errorf("InnerText = %q", got)
	}
	if d.Characters != 7 {
		t.Errorf("Characters = %d", d.Characters)
	}
}

func TestMismatchDetected(t *testing.T) {
	// Syntactically balanced but semantically mismatched tag names:
	// the DPDA accepts (syntax), the DOM pass rejects (semantics) —
	// exactly the paper's layering.
	_, err := build(t, `<a><b></c></a>`)
	var me *MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("err = %v, want MismatchError", err)
	}
	if me.Open != "b" || me.Close != "c" {
		t.Errorf("mismatch = %+v", me)
	}
	if !strings.Contains(me.Error(), "<b>") {
		t.Errorf("message = %q", me.Error())
	}
}

func TestRejectsSyntaxErrors(t *testing.T) {
	for _, doc := range []string{`<a>`, `<a
		x></a>`, `text only`} {
		if _, err := build(t, doc); err == nil {
			t.Errorf("Build(%q) should fail", doc)
		}
	}
}

func TestDOMMatchesSAXCountOnCorpusAndSample(t *testing.T) {
	l := lang.XML()
	cm, err := l.Compile(compile.OptAll)
	if err != nil {
		t.Fatal(err)
	}
	docs := [][]byte{[]byte(lang.XMLSample)}
	for _, d := range xmlgen.Corpus(2 << 10)[:8] {
		docs = append(docs, d.Data)
	}
	for i, data := range docs {
		d, _, err := Build(l, cm, data)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		c, _, err := swparse.XercesLike(data)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if d.Elements != c.Elements || d.Attributes != c.Attributes {
			t.Errorf("doc %d: DOM %d/%d vs SAX %d/%d elements/attrs",
				i, d.Elements, d.Attributes, c.Elements, c.Attributes)
		}
		// Character counts may differ on ignorable whitespace (the
		// ASPEN lexer skips whitespace-only runs); DOM must not exceed
		// SAX.
		if d.Characters > c.Characters {
			t.Errorf("doc %d: DOM characters %d > SAX %d", i, d.Characters, c.Characters)
		}
	}
}

func TestNodeString(t *testing.T) {
	d, err := build(t, `<a x="1"><b>t</b><!--c--></a>`)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Root.String()
	for _, frag := range []string{`<a x="1">`, "<b>", `"t"`, "<!--c-->"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q:\n%s", frag, s)
		}
	}
	if ElementNode.String() != "element" || TextNode.String() != "text" ||
		CommentNode.String() != "comment" || PINode.String() != "pi" {
		t.Error("NodeKind strings wrong")
	}
	if NodeKind(9).String() != "?" {
		t.Error("unknown kind")
	}
}

func TestFindMissing(t *testing.T) {
	d, err := build(t, `<a><b/></a>`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Root.Find("zzz") != nil {
		t.Error("Find should return nil for missing")
	}
	var nilNode *Node
	if nilNode.Find("x") != nil {
		t.Error("nil receiver Find should return nil")
	}
}
