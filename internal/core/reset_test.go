package core

import (
	"reflect"
	"testing"
)

// Reset must restore the exact start configuration: a second run over
// the same input yields the same Result a fresh Execution produces.
func TestExecutionReset(t *testing.T) {
	m := PalindromeHDPDA()
	input := BytesToSymbols([]byte("abcba"))

	run := func(e *Execution) Result {
		for _, sym := range input {
			if _, err := e.DrainEpsilon(); err != nil {
				t.Fatal(err)
			}
			ok, err := e.Feed(sym)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				res := e.Result()
				res.Jammed = true
				return res
			}
		}
		if _, err := e.DrainEpsilon(); err != nil {
			t.Fatal(err)
		}
		res := e.Result()
		res.Accepted = e.InAccept()
		return res
	}

	e := NewExecution(m, ExecOptions{})
	first := run(e)
	e.Reset()
	if e.Pos() != 0 || e.StackLen() != 0 || e.Current() != m.Start || e.TOS() != BottomOfStack {
		t.Fatalf("reset state: pos=%d stack=%d cur=%d tos=%d", e.Pos(), e.StackLen(), e.Current(), e.TOS())
	}
	second := run(e)
	if !reflect.DeepEqual(first, second) {
		t.Errorf("reset run %+v != fresh run %+v", second, first)
	}
	fresh := run(NewExecution(m, ExecOptions{}))
	if !reflect.DeepEqual(fresh, second) {
		t.Errorf("reset run %+v != new-execution run %+v", second, fresh)
	}
}

// After one warm-up run, Reset plus a full re-run allocates nothing:
// the stack slice keeps its grown capacity and the Result is scalar.
func TestResetZeroAllocs(t *testing.T) {
	m := loopMachine()
	e := NewExecution(m, ExecOptions{})
	cycle := func() {
		e.Reset()
		for i := 0; i < 64; i++ {
			e.Feed('a')
			e.StepEpsilon()
		}
	}
	cycle()
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Errorf("Reset+run = %v allocs, want 0", allocs)
	}
}
