package core

import "errors"

// ErrBankDead reports that the execution context's hardware was lost
// mid-run: the SRAM bank(s) holding the machine's state columns were
// retired from the fabric (a permanent fault, as opposed to the
// transient upsets below). The run cannot continue on this context; a
// recovery layer re-executes it from a checkpoint on a live context.
var ErrBankDead = errors.New("core: execution context lost (bank hardware failure)")

// Fault describes one injected hardware fault, in machine-level terms:
//
//   - NewState ≥ 0: a transient bit upset in the active state vector
//     landed on a different IM/SM column — the machine silently
//     continues from the wrong state.
//   - StuckTOS ≥ 0: a stuck-at fault in a stack SRAM column — the
//     top-of-stack symbol reads back with a bit forced, corrupting the
//     stack-match stage from here on. Ignored while the stack holds
//     only ⊥ (the bottom symbol is hardwired, §IV-B).
//   - Kill: the bank holding this context was permanently retired; the
//     run aborts with ErrBankDead.
//
// The zero Fault (NewState 0 is a real state) is NOT "no fault" — the
// injector signals absence through its ok return instead, so the
// disabled path never constructs one.
type Fault struct {
	NewState StateID
	StuckTOS int16
	Kill     bool
}

// NoFault is a Fault with every action disarmed; injectors start from
// it so an unset field cannot alias state 0 or symbol 0.
var NoFault = Fault{NewState: InvalidState, StuckTOS: -1}

// FaultInjector is consulted once per state activation and may corrupt
// the execution — the software analogue of transient upsets and hard
// failures in the repurposed LLC arrays. A nil injector (the default)
// costs one pointer nil check per activation and nothing else; the
// zero-allocation contract of the step path is pinned by
// TestStepZeroAllocsFaultsDisabled. Implementations must be cheap and
// allocation-free: they run inside the hot loop.
type FaultInjector interface {
	// Activation observes the just-activated state and the current
	// top-of-stack and returns the fault to apply, if any.
	Activation(step int, cur StateID, tos Symbol) (Fault, bool)
}

// applyFault mutates the execution according to f. Corruption is
// silent by design (the hardware has no parity on these arrays); only
// a bank kill surfaces as an error.
func (e *Execution) applyFault(f Fault) error {
	if f.Kill {
		return ErrBankDead
	}
	if f.NewState >= 0 && int(f.NewState) < len(e.M.States) {
		e.cur = f.NewState
		e.res.FinalState = f.NewState
	}
	if f.StuckTOS >= 0 && len(e.stack) > 1 {
		e.stack[len(e.stack)-1] = Symbol(f.StuckTOS)
	}
	return nil
}
