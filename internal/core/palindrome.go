package core

// This file constructs the machines of the paper's Fig. 1: a DPDA and an
// equivalent hand-built hDPDA recognizing odd-length palindromes over
// Σ = {'0','1'} with a known center character 'c'. They serve as the
// quickstart example and as cross-validation fixtures for the executor
// and the homogenization transform.

// Palindrome input alphabet.
const (
	PalZero   Symbol = '0'
	PalOne    Symbol = '1'
	PalCenter Symbol = 'c'
)

// Stack alphabet: ⊥ plus the two recorded symbols. The stack symbols
// reuse the input encodings for readability.
const (
	palStkZero Symbol = '0'
	palStkOne  Symbol = '1'
)

// PalindromeDPDA builds the Fig. 1(a) machine: q0 records the first half
// on the stack, the center character moves to q1, q1 pops while matching
// the second half, and an ε-move on ⊥ reaches the accepting q2.
func PalindromeDPDA() *DPDA {
	push := func(s Symbol) StackOp { return StackOp{Push: s, HasPush: true} }
	pop := StackOp{Pop: 1}
	nop := StackOp{}
	d := &DPDA{
		Name:      "odd-palindrome",
		NumStates: 3,
		Start:     0,
		Accept:    map[int]bool{2: true},
	}
	// q0: push the symbol read, for every possible stack top.
	for _, top := range []Symbol{BottomOfStack, palStkZero, palStkOne} {
		d.Trans = append(d.Trans,
			DPDATransition{From: 0, Input: PalZero, StackTop: top, To: 0, Op: push(palStkZero)},
			DPDATransition{From: 0, Input: PalOne, StackTop: top, To: 0, Op: push(palStkOne)},
			DPDATransition{From: 0, Input: PalCenter, StackTop: top, To: 1, Op: nop},
		)
	}
	// q1: pop on a match.
	d.Trans = append(d.Trans,
		DPDATransition{From: 1, Input: PalZero, StackTop: palStkZero, To: 1, Op: pop},
		DPDATransition{From: 1, Input: PalOne, StackTop: palStkOne, To: 1, Op: pop},
		// ε,⊥/⊥ → accept.
		DPDATransition{From: 1, Epsilon: true, StackTop: BottomOfStack, To: 2, Op: nop},
	)
	return d
}

// PalindromeHDPDA builds the Fig. 1(b) machine directly in homogeneous
// form: six states (plus the synthetic start), exactly as drawn —
// "0 ∗ pop0 push0", "1 ∗ pop0 push1", "c ∗ pop0", "0 0 pop1",
// "1 1 pop1", and "ε ⊥ pop0" (accepting).
func PalindromeHDPDA() *HDPDA {
	h := &HDPDA{Name: "odd-palindrome-h"}
	start := h.AddState(State{Label: "start", Epsilon: true, Stack: AllSymbols()})
	h.Start = start

	sZero := h.AddState(State{
		Label: "0*/push0",
		Input: NewSymbolSet(PalZero), Stack: AllSymbols(),
		Op: StackOp{Push: palStkZero, HasPush: true},
	})
	sOne := h.AddState(State{
		Label: "1*/push1",
		Input: NewSymbolSet(PalOne), Stack: AllSymbols(),
		Op: StackOp{Push: palStkOne, HasPush: true},
	})
	sCenter := h.AddState(State{
		Label: "c*/nop",
		Input: NewSymbolSet(PalCenter), Stack: AllSymbols(),
	})
	sPopZero := h.AddState(State{
		Label: "00/pop1",
		Input: NewSymbolSet(PalZero), Stack: NewSymbolSet(palStkZero),
		Op: StackOp{Pop: 1},
	})
	sPopOne := h.AddState(State{
		Label: "11/pop1",
		Input: NewSymbolSet(PalOne), Stack: NewSymbolSet(palStkOne),
		Op: StackOp{Pop: 1},
	})
	sAccept := h.AddState(State{
		Label:   "ε⊥/accept",
		Epsilon: true,
		Stack:   NewSymbolSet(BottomOfStack),
		Accept:  true,
	})

	// First half: the pushing states loop among themselves and can see
	// the center.
	for _, from := range []StateID{start, sZero, sOne} {
		h.AddEdge(from, sZero)
		h.AddEdge(from, sOne)
		h.AddEdge(from, sCenter)
	}
	// Second half: after the center, pop on matches or accept on ⊥.
	for _, from := range []StateID{sCenter, sPopZero, sPopOne} {
		h.AddEdge(from, sPopZero)
		h.AddEdge(from, sPopOne)
		h.AddEdge(from, sAccept)
	}
	return h
}

// IsOddPalindrome is the plain-Go oracle for the Fig. 1 language:
// w c reverse(w) for w over {0,1}.
func IsOddPalindrome(s string) bool {
	n := len(s)
	if n%2 == 0 {
		return false
	}
	mid := n / 2
	if s[mid] != byte(PalCenter) {
		return false
	}
	for i := 0; i < mid; i++ {
		c := s[i]
		if c != '0' && c != '1' {
			return false
		}
		if s[n-1-i] != c {
			return false
		}
	}
	return true
}
