package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEvenPalindromeNPDA(t *testing.T) {
	n := EvenPalindromeNPDA()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in   string
		want bool
	}{
		{"", true}, {"00", true}, {"11", true}, {"0110", true},
		{"101101", true}, {"1001", true},
		{"0", false}, {"01", false}, {"10", false}, {"0011", false},
		{"010", false}, {"abc", false}, {"0110x", false},
	}
	for _, tc := range cases {
		got, err := n.Run(BytesToSymbols([]byte(tc.in)), NPDAOptions{})
		if err != nil {
			t.Fatalf("Run(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("NPDA(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestEvenPalindromeNPDAProperty(t *testing.T) {
	n := EvenPalindromeNPDA()
	f := func(bits []bool) bool {
		if len(bits) > 24 {
			bits = bits[:24]
		}
		var b strings.Builder
		for _, x := range bits {
			if x {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		w := b.String()
		rev := make([]byte, len(w))
		for i := range rev {
			rev[i] = w[len(w)-1-i]
		}
		in := w + string(rev)
		ok, err := n.Run(BytesToSymbols([]byte(in)), NPDAOptions{})
		return err == nil && ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Random strings agree with the oracle.
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		ln := r.Intn(14)
		buf := make([]byte, ln)
		for j := range buf {
			buf[j] = "01"[r.Intn(2)]
		}
		want := IsEvenPalindrome(string(buf))
		got, err := n.Run(BytesToSymbols(buf), NPDAOptions{})
		if err != nil || got != want {
			t.Fatalf("NPDA(%q) = %v,%v want %v", buf, got, err, want)
		}
	}
}

// The separation: the even-palindrome machine is genuinely
// nondeterministic (DPDA validation rejects it) and exhibits stack
// divergence, the property ASPEN's hardware restriction rules out.
func TestNPDADeterminismBoundary(t *testing.T) {
	n := EvenPalindromeNPDA()
	if n.IsDeterministic() {
		t.Fatal("even-palindrome NPDA should not satisfy the DPDA restriction")
	}
	peak, err := n.MaxFrontier(BytesToSymbols([]byte("01100110")), NPDAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if peak < 3 {
		t.Errorf("peak frontier = %d, want ≥ 3 (stack divergence)", peak)
	}
	// A deterministic machine embedded as an NPDA never diverges.
	d := PalindromeDPDA()
	nd := &NPDA{Name: d.Name, NumStates: d.NumStates, Start: d.Start, Accept: d.Accept}
	for _, tr := range d.Trans {
		nd.Trans = append(nd.Trans, NPDATransition(tr))
	}
	if !nd.IsDeterministic() {
		t.Fatal("DPDA-as-NPDA should be deterministic")
	}
	// A deterministic machine's frontier stays constant with input
	// length (the ε-closure may briefly hold a pre- and post-ε config),
	// while the nondeterministic machine's grows.
	short, err := nd.MaxFrontier(BytesToSymbols([]byte("0c0")), NPDAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	long, err := nd.MaxFrontier(BytesToSymbols([]byte(strings.Repeat("0", 20)+"c"+strings.Repeat("0", 20))), NPDAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if long > short || long > 2 {
		t.Errorf("deterministic frontier grew: short=%d long=%d", short, long)
	}
	npShort, _ := n.MaxFrontier(BytesToSymbols([]byte("0000")), NPDAOptions{})
	npLong, _ := n.MaxFrontier(BytesToSymbols([]byte(strings.Repeat("0", 40))), NPDAOptions{})
	if npLong <= npShort {
		t.Errorf("nondeterministic frontier did not grow: %d vs %d", npShort, npLong)
	}
}

// A DPDA embedded as an NPDA accepts the same language.
func TestNPDAGeneralizesDPDA(t *testing.T) {
	d := PalindromeDPDA()
	nd := &NPDA{Name: d.Name, NumStates: d.NumStates, Start: d.Start, Accept: d.Accept}
	for _, tr := range d.Trans {
		nd.Trans = append(nd.Trans, NPDATransition(tr))
	}
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 400; i++ {
		in := randomPalInput(r)
		want, err := d.Run(BytesToSymbols([]byte(in)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := nd.Run(BytesToSymbols([]byte(in)), NPDAOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("disagreement on %q: npda=%v dpda=%v", in, got, want)
		}
	}
}

func TestNPDAConfigBudget(t *testing.T) {
	n := EvenPalindromeNPDA()
	// All-zeros keeps every guessed-middle branch alive, so the frontier
	// grows linearly with input length.
	in := BytesToSymbols([]byte(strings.Repeat("0", 80)))
	_, err := n.Run(in, NPDAOptions{MaxConfigs: 4})
	if !errors.Is(err, ErrConfigExplosion) {
		t.Fatalf("err = %v, want ErrConfigExplosion", err)
	}
}

func TestNPDAValidate(t *testing.T) {
	bad := []*NPDA{
		{Name: "empty"},
		{Name: "start", NumStates: 1, Start: 5},
		{Name: "range", NumStates: 1, Trans: []NPDATransition{{From: 0, To: 9}}},
		{Name: "bot", NumStates: 1, Trans: []NPDATransition{{From: 0, To: 0,
			Op: StackOp{Push: BottomOfStack, HasPush: true}}}},
	}
	for _, n := range bad {
		if err := n.Validate(); err == nil {
			t.Errorf("%s: expected validation error", n.Name)
		}
	}
}

func TestNPDAStackBound(t *testing.T) {
	// Pushing past MaxStack prunes that branch rather than erroring —
	// the configuration dies like a hardware stack-overflow fault.
	n := EvenPalindromeNPDA()
	long := strings.Repeat("0", 64) + strings.Repeat("0", 64)
	got, err := n.Run(BytesToSymbols([]byte(long)), NPDAOptions{MaxStack: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("palindrome needing 64 stack entries should die at MaxStack 8")
	}
	got, err = n.Run(BytesToSymbols([]byte("0110")), NPDAOptions{MaxStack: 8})
	if err != nil || !got {
		t.Errorf("small palindrome should still pass: %v %v", got, err)
	}
}
