package core

import (
	"fmt"
	"sort"
)

// DPDATransition is one rule of a classical (non-homogeneous) DPDA,
// written a,b/c in the paper's Fig. 1: on input Input (or ε when Epsilon)
// with StackTop on top of the stack, move to To and apply Op.
type DPDATransition struct {
	From     int
	Epsilon  bool
	Input    Symbol
	StackTop Symbol
	To       int
	Op       StackOp
}

// DPDA is a classical deterministic pushdown automaton, the 6-tuple
// (Q, Σ, Γ, δ, S, F) of paper §II-A restricted as in §II-B. It exists
// mainly as the source form for ToHomogeneous (Claim 1) and as a
// cross-validation oracle for the hDPDA executor.
type DPDA struct {
	Name      string
	NumStates int
	Start     int
	Accept    map[int]bool
	Trans     []DPDATransition
}

// Validate checks state ranges and the determinism restriction: for any
// (state, stack-top) at most one ε-rule, and no ε-rule coexisting with
// input rules; for any (state, input, stack-top) at most one rule.
func (d *DPDA) Validate() error {
	type key struct {
		from  int
		eps   bool
		input Symbol
		top   Symbol
	}
	seen := make(map[key]int)
	epsByTop := make(map[[2]int]bool)   // (from, top) has ε-rule
	inputByTop := make(map[[2]int]bool) // (from, top) has input rule
	for i, t := range d.Trans {
		if t.From < 0 || t.From >= d.NumStates || t.To < 0 || t.To >= d.NumStates {
			return fmt.Errorf("dpda %q: transition %d has out-of-range state", d.Name, i)
		}
		k := key{t.From, t.Epsilon, t.Input, t.StackTop}
		if t.Epsilon {
			k.input = 0
		}
		if j, dup := seen[k]; dup {
			return fmt.Errorf("dpda %q: transitions %d and %d are duplicates", d.Name, j, i)
		}
		seen[k] = i
		ft := [2]int{t.From, int(t.StackTop)}
		if t.Epsilon {
			if epsByTop[ft] {
				return fmt.Errorf("dpda %q: two ε-rules from state %d on stack %#02x", d.Name, t.From, uint8(t.StackTop))
			}
			if inputByTop[ft] {
				return fmt.Errorf("dpda %q: ε-rule and input rule overlap from state %d on stack %#02x", d.Name, t.From, uint8(t.StackTop))
			}
			epsByTop[ft] = true
		} else {
			if epsByTop[ft] {
				return fmt.Errorf("dpda %q: ε-rule and input rule overlap from state %d on stack %#02x", d.Name, t.From, uint8(t.StackTop))
			}
			inputByTop[ft] = true
		}
	}
	return nil
}

// Run executes the DPDA directly (reference semantics): ε-rules fire
// before input rules; the input is accepted when fully consumed with the
// machine in an accept state after trailing ε-moves.
func (d *DPDA) Run(input []Symbol) (accepted bool, err error) {
	state := d.Start
	stack := []Symbol{BottomOfStack}
	steps, limit := 0, 4*(len(input)+1)*(d.NumStates+1)+64

	apply := func(t DPDATransition) error {
		if t.Op.Pop > 0 {
			n := int(t.Op.Pop)
			if n > len(stack)-1 {
				return ErrStackUnderflow
			}
			stack = stack[:len(stack)-n]
		}
		if t.Op.HasPush {
			stack = append(stack, t.Op.Push)
		}
		state = t.To
		return nil
	}
	findEps := func() (DPDATransition, bool) {
		top := stack[len(stack)-1]
		for _, t := range d.Trans {
			if t.From == state && t.Epsilon && t.StackTop == top {
				return t, true
			}
		}
		return DPDATransition{}, false
	}
	drain := func() error {
		for {
			t, ok := findEps()
			if !ok {
				return nil
			}
			if steps++; steps > limit {
				return ErrEpsilonLimit
			}
			if err := apply(t); err != nil {
				return err
			}
		}
	}

	for _, sym := range input {
		if err := drain(); err != nil {
			return false, err
		}
		top := stack[len(stack)-1]
		fired := false
		for _, t := range d.Trans {
			if t.From == state && !t.Epsilon && t.Input == sym && t.StackTop == top {
				if err := apply(t); err != nil {
					return false, err
				}
				fired = true
				break
			}
		}
		if !fired {
			return false, nil // jam
		}
		steps++
	}
	if err := drain(); err != nil {
		return false, err
	}
	return d.Accept[state], nil
}

// ToHomogeneous converts the DPDA to an equivalent hDPDA by splitting
// each transition into its own homogeneous state (the construction behind
// paper Claim 1: at most O(|Σ||Q|²) states; in practice one state per
// transition plus a start state).
func (d *DPDA) ToHomogeneous() (*HDPDA, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	h := &HDPDA{Name: d.Name + "-h"}
	// Synthetic start state: active initially, never entered, no action.
	start := h.AddState(State{
		Label:   "start",
		Epsilon: true,
		Stack:   AllSymbols(),
		Accept:  d.Accept[d.Start], // empty input accepted iff start accepts
	})
	h.Start = start

	// One homogeneous state per DPDA transition.
	ids := make([]StateID, len(d.Trans))
	for i, t := range d.Trans {
		st := State{
			Epsilon: t.Epsilon,
			Stack:   NewSymbolSet(t.StackTop),
			Op:      t.Op,
			Accept:  d.Accept[t.To],
		}
		if t.Epsilon {
			st.Label = fmt.Sprintf("t%d:ε,%#02x→q%d", i, uint8(t.StackTop), t.To)
		} else {
			st.Input = NewSymbolSet(t.Input)
			st.Label = fmt.Sprintf("t%d:%#02x,%#02x→q%d", i, uint8(t.Input), uint8(t.StackTop), t.To)
		}
		ids[i] = h.AddState(st)
	}

	// Edge h_s → h_t whenever s's destination equals t's source; start
	// connects to transitions out of the DPDA start state.
	bySource := make(map[int][]int)
	for i, t := range d.Trans {
		bySource[t.From] = append(bySource[t.From], i)
	}
	for q := range bySource {
		sort.Ints(bySource[q])
	}
	for _, i := range bySource[d.Start] {
		h.AddEdge(start, ids[i])
	}
	for i, t := range d.Trans {
		for _, j := range bySource[t.To] {
			h.AddEdge(ids[i], ids[j])
		}
	}
	if err := h.Validate(); err != nil {
		return nil, fmt.Errorf("homogenization produced invalid machine: %w", err)
	}
	return h, nil
}
