package core

import (
	"math/rand"
	"testing"
)

// randomDPDA synthesizes a random deterministic PDA over small input and
// stack alphabets by filling (state, input|ε, top) slots without
// violating the determinism restriction: for each (state, top) pair,
// either one ε-rule or any number of distinct-input rules.
func randomDPDA(r *rand.Rand) *DPDA {
	numStates := 2 + r.Intn(4)
	inputs := []Symbol{'a', 'b', 'c'}[:1+r.Intn(3)]
	stacks := []Symbol{BottomOfStack, 1, 2}[:1+r.Intn(3)]
	d := &DPDA{
		Name:      "rand",
		NumStates: numStates,
		Start:     0,
		Accept:    map[int]bool{},
	}
	for s := 0; s < numStates; s++ {
		if r.Intn(3) == 0 {
			d.Accept[s] = true
		}
	}
	pushable := stacks[1:] // ⊥ is never pushed
	ops := func() StackOp {
		switch r.Intn(3) {
		case 0:
			return StackOp{}
		case 1:
			return StackOp{Pop: 1}
		default:
			if len(pushable) == 0 {
				return StackOp{}
			}
			return StackOp{Push: pushable[r.Intn(len(pushable))], HasPush: true}
		}
	}
	for s := 0; s < numStates; s++ {
		for _, top := range stacks {
			if r.Intn(6) == 0 {
				// ε-rule for this (state, top); nothing else allowed.
				// Avoid trivial self ε-loops with no stack change (they
				// never terminate).
				op := ops()
				to := r.Intn(numStates)
				if to == s && op.IsNop() {
					continue
				}
				d.Trans = append(d.Trans, DPDATransition{
					From: s, Epsilon: true, StackTop: top, To: to, Op: op,
				})
				continue
			}
			for _, in := range inputs {
				if r.Intn(2) == 0 {
					d.Trans = append(d.Trans, DPDATransition{
						From: s, Input: in, StackTop: top, To: r.Intn(numStates), Op: ops(),
					})
				}
			}
		}
	}
	// Pushing onto ⊥ of a symbol not in `stacks` can't happen (ops only
	// pushes known stack symbols); pops of ⊥ jam at runtime, which both
	// engines must agree on.
	return d
}

// Property: homogenization (Claim 1) preserves the language, on random
// machines and random inputs — including jam, underflow, and ε-loop
// behaviour differences, which must never cause divergence in the
// accept/reject decision when both engines terminate.
func TestHomogenizationEquivalenceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	machines := 0
	for trial := 0; trial < 600 && machines < 200; trial++ {
		d := randomDPDA(r)
		if d.Validate() != nil {
			continue
		}
		h, err := d.ToHomogeneous()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		machines++
		for i := 0; i < 40; i++ {
			n := r.Intn(8)
			in := make([]Symbol, n)
			for j := range in {
				in[j] = []Symbol{'a', 'b', 'c'}[r.Intn(3)]
			}
			want, errD := d.Run(in)
			res, errH := h.Run(in, ExecOptions{})
			// Engines may hit runtime faults (ε-limit, underflow) on
			// degenerate machines; they must fault together.
			if (errD == nil) != (errH == nil) {
				t.Fatalf("trial %d input %v: fault divergence dpda=%v hdpda=%v", trial, in, errD, errH)
			}
			if errD != nil {
				continue
			}
			if want != res.Accepted {
				t.Fatalf("trial %d input %v: dpda=%v hdpda=%v\nmachine: %+v",
					trial, in, want, res.Accepted, d.Trans)
			}
		}
	}
	if machines < 100 {
		t.Fatalf("only %d machines exercised", machines)
	}
	t.Logf("equivalence checked on %d random DPDAs", machines)
}

// Claim 1's bound: the homogenized machine has at most |Σ||Q|² states
// (plus the synthetic start).
func TestHomogenizationSizeBound(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	for trial := 0; trial < 100; trial++ {
		d := randomDPDA(r)
		if d.Validate() != nil {
			continue
		}
		h, err := d.ToHomogeneous()
		if err != nil {
			t.Fatal(err)
		}
		bound := 3*d.NumStates*d.NumStates + 1 // |Σ| ≤ 3 here
		// Our construction is tighter: one state per transition.
		if h.NumStates() > len(d.Trans)+1 {
			t.Fatalf("states %d > transitions+1 %d", h.NumStates(), len(d.Trans)+1)
		}
		if h.NumStates() > bound {
			t.Fatalf("states %d exceed Claim 1 bound %d", h.NumStates(), bound)
		}
	}
}
