// Package core implements the computational model at the heart of ASPEN
// (MICRO 2018): deterministic pushdown automata (DPDA) and their
// homogeneous form (hDPDA), in which every transition into a state occurs
// on the same input-symbol match, stack-symbol comparison, and stack
// operation. The homogeneous form maps one state to one SRAM column in
// the ASPEN datapath; this package provides the functional semantics that
// both the optimizing compiler (internal/compile) and the cycle-accurate
// architecture simulator (internal/arch) share, so the two engines cannot
// drift apart.
package core
