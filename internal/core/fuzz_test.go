package core

import (
	"errors"
	"reflect"
	"testing"
)

// palInput maps arbitrary fuzz bytes onto the palindrome machine's
// input alphabet so most generated inputs exercise real runs instead of
// jamming on the first symbol.
func palInput(data []byte) []Symbol {
	alpha := []Symbol{'0', '1', 'c'}
	out := make([]Symbol, len(data))
	for i, b := range data {
		out[i] = alpha[int(b)%len(alpha)]
	}
	return out
}

// FuzzCheckpointRestoreRoundTrip pins the two halves of the checkpoint
// integrity contract on arbitrary inputs and snapshot points:
//
//  1. restore(unmarshal(marshal(snapshot(e)))) resumes byte-identically
//     to the uninterrupted run, and
//  2. any single-byte corruption of the marshaled snapshot is rejected
//     (parse error or digest mismatch) — never restored, never a panic.
func FuzzCheckpointRestoreRoundTrip(f *testing.F) {
	f.Add([]byte("010c010"), 3, 0, byte(0))
	f.Add([]byte("0110c0110"), 5, 8, byte(0xff))
	f.Add([]byte("c"), 0, 2, byte(1))
	f.Add([]byte("0101010101"), 9, 40, byte(0x80))
	f.Add([]byte{}, 0, 0, byte(7))
	f.Fuzz(func(t *testing.T, data []byte, cpAt int, corruptOff int, corruptXor byte) {
		m := PalindromeHDPDA()
		input := palInput(data)
		if cpAt < 0 {
			cpAt = -cpAt
		}
		if cpAt > len(input) {
			cpAt = len(input)
		}

		ref := NewExecution(m, ExecOptions{CollectReports: true})
		want := finish(ref, input)

		e := NewExecution(m, ExecOptions{CollectReports: true})
		fed, ended, err := drive(e, input, cpAt)
		if ended || err != nil {
			return // run over before the snapshot point: nothing to resume
		}
		var cp Checkpoint
		e.Checkpoint(&cp)
		raw, merr := cp.MarshalBinary()
		if merr != nil {
			t.Fatalf("marshal: %v", merr)
		}

		// Round trip through the codec, then resume and compare.
		var cp2 Checkpoint
		if err := cp2.UnmarshalBinary(raw); err != nil {
			t.Fatalf("unmarshal of pristine encoding failed: %v", err)
		}
		fresh := NewExecution(m, ExecOptions{CollectReports: true})
		if err := fresh.Restore(&cp2); err != nil {
			t.Fatalf("restore of pristine round-trip rejected: %v", err)
		}
		if got := finish(fresh, input[fed:]); !reflect.DeepEqual(got, want) {
			t.Fatalf("round-tripped resume diverged:\n got %+v\nwant %+v", got, want)
		}

		// Corrupt one byte: the snapshot must be rejected, not replayed.
		if corruptXor != 0 && len(raw) > 0 {
			mut := append([]byte(nil), raw...)
			mut[((corruptOff%len(mut))+len(mut))%len(mut)] ^= corruptXor
			var cp3 Checkpoint
			if uerr := cp3.UnmarshalBinary(mut); uerr == nil {
				victim := NewExecution(m, ExecOptions{CollectReports: true})
				if rerr := victim.Restore(&cp3); !errors.Is(rerr, ErrCheckpointCorrupt) {
					t.Fatalf("corrupted snapshot restored (off %d xor %#x): err=%v",
						corruptOff, corruptXor, rerr)
				}
			}
		}

		// Arbitrary bytes must never panic the decoder.
		var junk Checkpoint
		_ = junk.UnmarshalBinary(data)
	})
}

// TestCheckpointDigestRejectsTamper pins the integrity seal at the
// field level: any direct mutation of a sealed checkpoint makes Restore
// answer ErrCheckpointCorrupt.
func TestCheckpointDigestRejectsTamper(t *testing.T) {
	m := PalindromeHDPDA()
	e := NewExecution(m, ExecOptions{CollectReports: true})
	if _, _, err := drive(e, []Symbol{'0', '1', '0'}, 3); err != nil {
		t.Fatal(err)
	}
	var cp Checkpoint
	e.Checkpoint(&cp)
	if !cp.Verify() {
		t.Fatal("fresh checkpoint fails its own seal")
	}

	tampers := []struct {
		name string
		mut  func(c *Checkpoint)
	}{
		{"cur", func(c *Checkpoint) { c.Cur++ }},
		{"pos", func(c *Checkpoint) { c.Pos += 3 }},
		{"stack", func(c *Checkpoint) { c.Stack[len(c.Stack)-1] ^= 0x4 }},
		{"steps", func(c *Checkpoint) { c.Res.Steps-- }},
		{"stalls", func(c *Checkpoint) { c.Res.EpsilonStalls += 2 }},
	}
	for _, tc := range tampers {
		c := cp
		c.Stack = append([]Symbol(nil), cp.Stack...)
		c.Res.Reports = append([]Report(nil), cp.Res.Reports...)
		tc.mut(&c)
		victim := NewExecution(m, ExecOptions{})
		if err := victim.Restore(&c); !errors.Is(err, ErrCheckpointCorrupt) {
			t.Errorf("%s tamper: Restore = %v, want ErrCheckpointCorrupt", tc.name, err)
		}
	}

	// Reseal after a legitimate mutation: accepted again.
	c := cp
	c.Pos++
	c.Seal()
	victim := NewExecution(m, ExecOptions{})
	if err := victim.Restore(&c); err != nil {
		t.Errorf("resealed checkpoint rejected: %v", err)
	}
}
