package core

import (
	"fmt"
	"sort"
)

// StateID identifies a state within an HDPDA. IDs are dense indices into
// the machine's state slice.
type StateID int32

// InvalidState is returned by lookups that find no state.
const InvalidState StateID = -1

// StackOp describes the stack action bound to an hDPDA state: pop Pop
// symbols (0 = none, >1 = multipop), then optionally push one symbol.
// This is the 16-bit action word of the paper's stack-action-lookup
// stage: 8 bits of push symbol, 8 bits of pop count.
type StackOp struct {
	Pop  uint8  // number of symbols popped (multipop when > 1)
	Push Symbol // symbol pushed after popping, when HasPush
	// HasPush distinguishes "push Push" from "no push" (the zero Symbol
	// is a valid stack symbol only for ⊥, which is never pushed).
	HasPush bool
}

// IsNop reports whether the operation leaves the stack unchanged.
func (op StackOp) IsNop() bool { return op.Pop == 0 && !op.HasPush }

func (op StackOp) String() string {
	s := fmt.Sprintf("pop %d", op.Pop)
	if op.HasPush {
		s += fmt.Sprintf(", push %#02x", uint8(op.Push))
	}
	return s
}

// State is one homogeneous DPDA state. Because the machine is
// homogeneous, the input match, stack match, and stack operation are
// properties of the state itself: an incoming transition is taken exactly
// when the state's input label matches the next input symbol (or the
// state is an ε-state) and its stack label matches the top of stack.
//
// In hardware each state is a single column across the bank's IM and SM
// SRAM arrays plus a 16-bit stack-action word.
type State struct {
	ID    StateID
	Label string // diagnostic name, e.g. "s12:shift(LPAREN)"

	// Epsilon marks an ε-state: it consumes no input (the paper's
	// ε-transitions). Epsilon states stall the input stream for one
	// cycle when activated (§IV-B).
	Epsilon bool
	// Input is the input-symbol label (one-hot IM column). Ignored for
	// ε-states.
	Input SymbolSet
	// Stack is the top-of-stack label (one-hot SM column). Use
	// AllSymbols() for the wildcard ∗ comparison.
	Stack SymbolSet
	// Op is the stack action performed upon activation.
	Op StackOp

	// Accept marks a reporting state: activating it reports the current
	// input position (the paper's report events).
	Accept bool
	// Report carries an application-defined code attached to reports
	// from this state (e.g. the grammar production reduced).
	Report int32

	// Succ lists the states reachable from this state, in ascending ID
	// order. This is the crossbar row programmed for this state.
	Succ []StateID
}

// MatchesInput reports whether the state's input label matches sym.
// ε-states never match input.
func (st *State) MatchesInput(sym Symbol) bool {
	return !st.Epsilon && st.Input.Contains(sym)
}

// MatchesStack reports whether the state's stack label matches the given
// top-of-stack symbol.
func (st *State) MatchesStack(tos Symbol) bool { return st.Stack.Contains(tos) }

// HDPDA is a homogeneous deterministic pushdown automaton. Start states
// are active before any input is consumed; they perform no match and no
// stack operation themselves.
type HDPDA struct {
	Name   string
	States []State
	// Start is the initial active state.
	Start StateID
	// InputAlphabet optionally restricts the valid input symbols
	// (used for validation and for architecture sizing; empty = 256).
	InputAlphabet SymbolSet
	// StackAlphabet optionally restricts the valid stack symbols.
	StackAlphabet SymbolSet
	// StackDepth is the maximum stack depth (0 means DefaultStackDepth).
	// ASPEN provisions 256 entries (§IV-B stage 5).
	StackDepth int
}

// DefaultStackDepth matches the 256-entry register-file stack provisioned
// per LLC way pair in the paper.
const DefaultStackDepth = 256

// NumStates returns the number of states in the machine.
func (m *HDPDA) NumStates() int { return len(m.States) }

// State returns the state with the given ID, or nil if out of range.
func (m *HDPDA) State(id StateID) *State {
	if id < 0 || int(id) >= len(m.States) {
		return nil
	}
	return &m.States[id]
}

// AddState appends a state and returns its ID. The caller fills in
// successors afterwards via AddEdge.
func (m *HDPDA) AddState(st State) StateID {
	id := StateID(len(m.States))
	st.ID = id
	m.States = append(m.States, st)
	return id
}

// AddEdge adds a transition from → to, keeping Succ sorted and free of
// duplicates.
func (m *HDPDA) AddEdge(from, to StateID) {
	s := &m.States[from]
	i := sort.Search(len(s.Succ), func(i int) bool { return s.Succ[i] >= to })
	if i < len(s.Succ) && s.Succ[i] == to {
		return
	}
	s.Succ = append(s.Succ, 0)
	copy(s.Succ[i+1:], s.Succ[i:])
	s.Succ[i] = to
}

// Fingerprint returns an FNV-1a digest of the machine's structure:
// every state's match labels, stack action, report wiring, and
// successor row, plus the start state and stack depth. Two machines
// with equal fingerprints execute identically, so a durable checkpoint
// stamped with the fingerprint of the machine that took it can prove —
// across a process restart and a recompile — that the machine resuming
// it is the same build. Labels are excluded: they are diagnostics, not
// behavior.
func (m *HDPDA) Fingerprint() uint64 {
	h := fnv64(fnvOffset64)
	h.u64(uint64(int64(m.Start)))
	h.u64(uint64(int64(m.StackDepth)))
	hashSet := func(s SymbolSet) {
		for _, w := range s {
			h.u64(w)
		}
	}
	hashSet(m.InputAlphabet)
	hashSet(m.StackAlphabet)
	for i := range m.States {
		st := &m.States[i]
		h.bool(st.Epsilon)
		hashSet(st.Input)
		hashSet(st.Stack)
		h.byte(st.Op.Pop)
		h.byte(byte(st.Op.Push))
		h.bool(st.Op.HasPush)
		h.bool(st.Accept)
		h.u64(uint64(int64(st.Report)))
		h.u64(uint64(len(st.Succ)))
		for _, t := range st.Succ {
			h.u64(uint64(int64(t)))
		}
	}
	return uint64(h)
}

// EpsilonStates returns the number of ε-states, the quantity the paper's
// Table IV reports and that the ε-merging/multipop optimizations reduce.
func (m *HDPDA) EpsilonStates() int {
	n := 0
	for i := range m.States {
		if m.States[i].Epsilon {
			n++
		}
	}
	return n
}

// CountEdges returns the total number of transitions.
func (m *HDPDA) CountEdges() int {
	n := 0
	for i := range m.States {
		n += len(m.States[i].Succ)
	}
	return n
}

// MaxFanout returns the largest successor count of any state.
func (m *HDPDA) MaxFanout() int {
	mx := 0
	for i := range m.States {
		if len(m.States[i].Succ) > mx {
			mx = len(m.States[i].Succ)
		}
	}
	return mx
}

// Validate checks structural well-formedness and the determinism
// condition: from any state, for any (input, TOS) pair, at most one
// successor may be enabled, and an enabled ε-successor must be the only
// enabled successor (ε-moves happen before input moves, so an ε/input
// overlap would make the configuration ambiguous).
func (m *HDPDA) Validate() error {
	if len(m.States) == 0 {
		return fmt.Errorf("hdpda %q: no states", m.Name)
	}
	if m.Start < 0 || int(m.Start) >= len(m.States) {
		return fmt.Errorf("hdpda %q: start state %d out of range", m.Name, m.Start)
	}
	for i := range m.States {
		st := &m.States[i]
		if st.ID != StateID(i) {
			return fmt.Errorf("hdpda %q: state %d has mismatched ID %d", m.Name, i, st.ID)
		}
		if !st.Epsilon && st.Input.IsEmpty() {
			return fmt.Errorf("hdpda %q: state %d (%s) is not ε but matches no input", m.Name, i, st.Label)
		}
		if st.Stack.IsEmpty() {
			return fmt.Errorf("hdpda %q: state %d (%s) matches no stack symbol", m.Name, i, st.Label)
		}
		if st.Op.HasPush && st.Op.Push == BottomOfStack {
			return fmt.Errorf("hdpda %q: state %d (%s) pushes ⊥", m.Name, i, st.Label)
		}
		for _, t := range st.Succ {
			if t < 0 || int(t) >= len(m.States) {
				return fmt.Errorf("hdpda %q: state %d has successor %d out of range", m.Name, i, t)
			}
		}
	}
	return m.checkDeterminism()
}

// checkDeterminism verifies pairwise that no two successors of any state
// can be simultaneously enabled, and that ε-successors cannot be enabled
// alongside any other successor.
func (m *HDPDA) checkDeterminism() error {
	for i := range m.States {
		st := &m.States[i]
		for a := 0; a < len(st.Succ); a++ {
			sa := &m.States[st.Succ[a]]
			for b := a + 1; b < len(st.Succ); b++ {
				sb := &m.States[st.Succ[b]]
				if !sa.Stack.Intersects(sb.Stack) {
					continue // disjoint TOS labels can never both fire
				}
				switch {
				case sa.Epsilon && sb.Epsilon:
					return fmt.Errorf("hdpda %q: state %d (%s): ε-successors %d and %d overlap on stack %s",
						m.Name, i, st.Label, sa.ID, sb.ID, sa.Stack.Intersect(sb.Stack))
				case sa.Epsilon || sb.Epsilon:
					return fmt.Errorf("hdpda %q: state %d (%s): ε-successor and input successor (%d, %d) overlap on stack %s",
						m.Name, i, st.Label, sa.ID, sb.ID, sa.Stack.Intersect(sb.Stack))
				case sa.Input.Intersects(sb.Input):
					return fmt.Errorf("hdpda %q: state %d (%s): successors %d and %d overlap on input %s stack %s",
						m.Name, i, st.Label, sa.ID, sb.ID,
						sa.Input.Intersect(sb.Input), sa.Stack.Intersect(sb.Stack))
				}
			}
		}
	}
	return nil
}

// Reachable returns the set of states reachable from Start, as a boolean
// slice indexed by StateID.
func (m *HDPDA) Reachable() []bool {
	seen := make([]bool, len(m.States))
	stack := []StateID{m.Start}
	seen[m.Start] = true
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range m.States[id].Succ {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	return seen
}

// RemoveUnreachable deletes states not reachable from Start (the paper's
// first optimization pass) and renumbers the remainder. It returns the
// number of states removed.
func (m *HDPDA) RemoveUnreachable() int {
	seen := m.Reachable()
	remap := make([]StateID, len(m.States))
	kept := make([]State, 0, len(m.States))
	for i := range m.States {
		if seen[i] {
			remap[i] = StateID(len(kept))
			kept = append(kept, m.States[i])
		} else {
			remap[i] = InvalidState
		}
	}
	removed := len(m.States) - len(kept)
	if removed == 0 {
		return 0
	}
	for i := range kept {
		st := &kept[i]
		st.ID = StateID(i)
		out := st.Succ[:0]
		for _, t := range st.Succ {
			if remap[t] != InvalidState {
				out = append(out, remap[t])
			}
		}
		st.Succ = out
	}
	m.States = kept
	m.Start = remap[m.Start]
	return removed
}

// Clone returns a deep copy of the machine.
func (m *HDPDA) Clone() *HDPDA {
	c := *m
	c.States = make([]State, len(m.States))
	copy(c.States, m.States)
	for i := range c.States {
		c.States[i].Succ = append([]StateID(nil), m.States[i].Succ...)
	}
	return &c
}
