package core

import (
	"fmt"
	"math/bits"
	"strings"
)

// Symbol is an 8-bit input or stack symbol, matching ASPEN's 8-bit
// datapath (input symbols and top-of-stack symbols are broadcast as 8-bit
// row addresses to the SRAM arrays; see paper §IV-B).
type Symbol uint8

// BottomOfStack is the reserved ⊥ symbol that marks the bottom of the
// stack. Machines must not push it explicitly; it is pre-loaded at
// configuration time and matching it signals an empty stack.
const BottomOfStack Symbol = 0

// SymbolSet is a 256-bit set of symbols. It mirrors the one-hot encoded
// SRAM column used for state matching in ASPEN: bit s is set iff the
// state matches symbol s.
type SymbolSet [4]uint64

// NewSymbolSet returns a set containing exactly the given symbols.
func NewSymbolSet(syms ...Symbol) SymbolSet {
	var s SymbolSet
	for _, x := range syms {
		s.Add(x)
	}
	return s
}

// AllSymbols returns the full set (the wildcard ∗ match).
func AllSymbols() SymbolSet {
	return SymbolSet{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)}
}

// SymbolRange returns the set {lo..hi} inclusive.
func SymbolRange(lo, hi Symbol) SymbolSet {
	var s SymbolSet
	for c := int(lo); c <= int(hi); c++ {
		s.Add(Symbol(c))
	}
	return s
}

// Add inserts sym into the set.
func (s *SymbolSet) Add(sym Symbol) { s[sym>>6] |= 1 << (sym & 63) }

// Remove deletes sym from the set.
func (s *SymbolSet) Remove(sym Symbol) { s[sym>>6] &^= 1 << (sym & 63) }

// Contains reports whether sym is in the set.
func (s SymbolSet) Contains(sym Symbol) bool {
	return s[sym>>6]&(1<<(sym&63)) != 0
}

// IsEmpty reports whether the set has no members.
func (s SymbolSet) IsEmpty() bool { return s == SymbolSet{} }

// Len returns the number of symbols in the set.
func (s SymbolSet) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Union returns s ∪ t.
func (s SymbolSet) Union(t SymbolSet) SymbolSet {
	return SymbolSet{s[0] | t[0], s[1] | t[1], s[2] | t[2], s[3] | t[3]}
}

// Intersect returns s ∩ t.
func (s SymbolSet) Intersect(t SymbolSet) SymbolSet {
	return SymbolSet{s[0] & t[0], s[1] & t[1], s[2] & t[2], s[3] & t[3]}
}

// Intersects reports whether s and t share any symbol.
func (s SymbolSet) Intersects(t SymbolSet) bool {
	return s[0]&t[0] != 0 || s[1]&t[1] != 0 || s[2]&t[2] != 0 || s[3]&t[3] != 0
}

// Symbols returns the members of the set in ascending order.
func (s SymbolSet) Symbols() []Symbol {
	out := make([]Symbol, 0, s.Len())
	for w := 0; w < 4; w++ {
		word := s[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, Symbol(w*64+b))
			word &= word - 1
		}
	}
	return out
}

// String renders the set compactly, collapsing runs (e.g. "[0x41-0x5a]").
func (s SymbolSet) String() string {
	if s == AllSymbols() {
		return "*"
	}
	syms := s.Symbols()
	if len(syms) == 0 {
		return "∅"
	}
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < len(syms); {
		j := i
		for j+1 < len(syms) && syms[j+1] == syms[j]+1 {
			j++
		}
		if i > 0 {
			b.WriteByte(',')
		}
		if j == i {
			fmt.Fprintf(&b, "%#02x", uint8(syms[i]))
		} else {
			fmt.Fprintf(&b, "%#02x-%#02x", uint8(syms[i]), uint8(syms[j]))
		}
		i = j + 1
	}
	b.WriteByte(']')
	return b.String()
}
