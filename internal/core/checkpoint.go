package core

// Checkpoint is a resumable snapshot of an Execution: active state,
// stack contents, input position, the ε-run counter, and the statistics
// accumulated so far. Because the machine is deterministic, restoring a
// checkpoint and re-feeding the same symbols reproduces the
// uninterrupted run exactly (TestCheckpointReplayEquivalence) — which
// turns deterministic re-execution into a recovery primitive: a run
// corrupted by a hardware fault is rolled back to its last checkpoint
// and replayed on a healthy context.
//
// A Checkpoint owns its buffers. Checkpoint/Restore reuse them across
// calls, so a long-lived (checkpoint, execution) pair reaches steady
// state with zero per-checkpoint allocations once the buffers have
// grown to the run's high-water marks.
type Checkpoint struct {
	Cur    StateID
	Stack  []Symbol
	Pos    int
	EpsSeq int
	Res    Result
}

// Checkpoint copies the execution's resumable state into cp,
// overwriting whatever cp held. cp's slices are reused.
func (e *Execution) Checkpoint(cp *Checkpoint) {
	cp.Cur = e.cur
	cp.Stack = append(cp.Stack[:0], e.stack...)
	cp.Pos = e.pos
	cp.EpsSeq = e.epsSeq
	reports := append(cp.Res.Reports[:0], e.res.Reports...)
	cp.Res = e.res
	cp.Res.Reports = reports
}

// Restore rewinds the execution to cp. The execution must run the same
// machine the checkpoint was taken from (stack depth and ε-budget are
// properties of the execution and are kept). The execution's buffers
// are reused; cp is not aliased and may be restored again later.
func (e *Execution) Restore(cp *Checkpoint) {
	e.cur = cp.Cur
	e.stack = append(e.stack[:0], cp.Stack...)
	e.pos = cp.Pos
	e.epsSeq = cp.EpsSeq
	reports := append(e.res.Reports[:0], cp.Res.Reports...)
	e.res = cp.Res
	e.res.Reports = reports
}
