package core

import (
	"errors"
	"fmt"
)

// ErrCheckpointCorrupt reports that a checkpoint failed its integrity
// digest: the snapshot bytes were corrupted between Checkpoint and
// Restore (the fabric's SRAM has no parity — see internal/arch — so
// checkpoint storage is as corruptible as live state). Restore rejects
// the snapshot instead of replaying garbage; the recovery layer must
// fail the request rather than resume from it.
var ErrCheckpointCorrupt = errors.New("core: checkpoint failed its integrity digest")

// Checkpoint is a resumable snapshot of an Execution: active state,
// stack contents, input position, the ε-run counter, and the statistics
// accumulated so far. Because the machine is deterministic, restoring a
// checkpoint and re-feeding the same symbols reproduces the
// uninterrupted run exactly (TestCheckpointReplayEquivalence) — which
// turns deterministic re-execution into a recovery primitive: a run
// corrupted by a hardware fault is rolled back to its last checkpoint
// and replayed on a healthy context.
//
// A Checkpoint owns its buffers. Checkpoint/Restore reuse them across
// calls, so a long-lived (checkpoint, execution) pair reaches steady
// state with zero per-checkpoint allocations once the buffers have
// grown to the run's high-water marks.
type Checkpoint struct {
	Cur    StateID
	Stack  []Symbol
	Pos    int
	EpsSeq int
	Res    Result

	// Digest is an FNV-1a self-seal over every field above, written by
	// Execution.Checkpoint (or Seal) and verified by Restore. A restore
	// whose recomputed digest disagrees returns ErrCheckpointCorrupt —
	// a corrupted snapshot is rejected, never replayed.
	Digest uint64
}

// FNV-1a parameters, shared with internal/verify's trace digest.
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

type fnv64 uint64

func (h *fnv64) byte(b byte) { *h = (*h ^ fnv64(b)) * fnvPrime64 }
func (h *fnv64) bool(b bool) {
	if b {
		h.byte(1)
	} else {
		h.byte(0)
	}
}
func (h *fnv64) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}
func (h *fnv64) int(v int) { h.u64(uint64(int64(v))) }

// computeDigest folds every semantic field. It is allocation-free so
// the checkpoint buffer-reuse contract (TestCheckpointBufferReuse)
// survives the seal.
func (cp *Checkpoint) computeDigest() uint64 {
	h := fnv64(fnvOffset64)
	h.int(int(cp.Cur))
	h.int(cp.Pos)
	h.int(cp.EpsSeq)
	h.int(len(cp.Stack))
	for _, s := range cp.Stack {
		h.byte(byte(s))
	}
	h.bool(cp.Res.Accepted)
	h.int(cp.Res.Consumed)
	h.bool(cp.Res.Jammed)
	h.int(cp.Res.EpsilonStalls)
	h.int(cp.Res.Steps)
	h.int(int(cp.Res.FinalState))
	h.int(cp.Res.MaxStackDepth)
	h.int(cp.Res.ReportCount)
	h.int(len(cp.Res.Reports))
	for _, r := range cp.Res.Reports {
		h.int(r.Pos)
		h.int(int(r.State))
		h.int(int(r.Code))
	}
	return uint64(h)
}

// Seal recomputes and stores the integrity digest. Execution.Checkpoint
// seals automatically; call Seal after mutating a checkpoint by hand
// (tests, codecs).
func (cp *Checkpoint) Seal() { cp.Digest = cp.computeDigest() }

// Verify reports whether the checkpoint still matches its seal.
func (cp *Checkpoint) Verify() bool { return cp.Digest == cp.computeDigest() }

// Checkpoint copies the execution's resumable state into cp,
// overwriting whatever cp held, and seals it. cp's slices are reused.
func (e *Execution) Checkpoint(cp *Checkpoint) {
	cp.Cur = e.cur
	cp.Stack = append(cp.Stack[:0], e.stack...)
	cp.Pos = e.pos
	cp.EpsSeq = e.epsSeq
	reports := append(cp.Res.Reports[:0], e.res.Reports...)
	cp.Res = e.res
	cp.Res.Reports = reports
	cp.Seal()
}

// Restore rewinds the execution to cp after verifying the seal; a
// corrupted snapshot returns ErrCheckpointCorrupt and leaves the
// execution untouched. The execution must run the same machine the
// checkpoint was taken from (stack depth and ε-budget are properties of
// the execution and are kept). The execution's buffers are reused; cp
// is not aliased and may be restored again later.
func (e *Execution) Restore(cp *Checkpoint) error {
	if !cp.Verify() {
		return ErrCheckpointCorrupt
	}
	// A snapshot can carry a valid seal yet belong to a different
	// machine (a durable checkpoint restored after a grammar swap):
	// refuse a state the executing machine does not have rather than
	// resuming into out-of-range indexing.
	if cp.Cur < 0 || int(cp.Cur) >= len(e.M.States) {
		return fmt.Errorf("%w: state %d outside this machine's %d states",
			ErrCheckpointCorrupt, cp.Cur, len(e.M.States))
	}
	e.cur = cp.Cur
	e.stack = append(e.stack[:0], cp.Stack...)
	e.pos = cp.Pos
	e.epsSeq = cp.EpsSeq
	reports := append(e.res.Reports[:0], cp.Res.Reports...)
	e.res = cp.Res
	e.res.Reports = reports
	return nil
}
