package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestPalindromeDPDAValidates(t *testing.T) {
	if err := PalindromeDPDA().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPalindromeHDPDAValidates(t *testing.T) {
	if err := PalindromeHDPDA().Validate(); err != nil {
		t.Fatal(err)
	}
}

var palindromeCases = []struct {
	in   string
	want bool
}{
	{"c", true},
	{"0c0", true},
	{"1c1", true},
	{"01c10", true},
	{"10c01", true},
	{"1101c1011", true},
	{"", false},
	{"0", false},
	{"00", false},
	{"0c1", false},
	{"1c0", false},
	{"01c01", false},
	{"cc", false},
	{"0cc0", false},
	{"c0", false},
	{"0c", false},
	{"0c00", false},
	{"00c0", false},
}

func TestPalindromeDPDA(t *testing.T) {
	d := PalindromeDPDA()
	for _, tc := range palindromeCases {
		got, err := d.Run(BytesToSymbols([]byte(tc.in)))
		if err != nil {
			t.Fatalf("Run(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("DPDA(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestPalindromeHDPDA(t *testing.T) {
	h := PalindromeHDPDA()
	for _, tc := range palindromeCases {
		if got := h.Accepts(BytesToSymbols([]byte(tc.in))); got != tc.want {
			t.Errorf("hDPDA(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestPalindromeHomogenized(t *testing.T) {
	h, err := PalindromeDPDA().ToHomogeneous()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range palindromeCases {
		if got := h.Accepts(BytesToSymbols([]byte(tc.in))); got != tc.want {
			t.Errorf("homogenized(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// randomPalInput produces strings over {0,1,c} biased toward near-misses.
func randomPalInput(r *rand.Rand) string {
	n := r.Intn(12)
	var b strings.Builder
	if r.Intn(2) == 0 {
		// Construct a true palindrome, maybe corrupt one position.
		w := make([]byte, n)
		for i := range w {
			w[i] = "01"[r.Intn(2)]
		}
		b.Write(w)
		b.WriteByte('c')
		for i := n - 1; i >= 0; i-- {
			b.WriteByte(w[i])
		}
		s := []byte(b.String())
		if r.Intn(3) == 0 && len(s) > 0 {
			s[r.Intn(len(s))] = "01c"[r.Intn(3)]
		}
		return string(s)
	}
	for i := 0; i < n; i++ {
		b.WriteByte("01c"[r.Intn(3)])
	}
	return b.String()
}

// Property: DPDA, hand-built hDPDA, homogenized hDPDA, and the plain-Go
// oracle all agree.
func TestPalindromeFourWayAgreement(t *testing.T) {
	d := PalindromeDPDA()
	h := PalindromeHDPDA()
	hc, err := d.ToHomogeneous()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		in := randomPalInput(r)
		want := IsOddPalindrome(in)
		syms := BytesToSymbols([]byte(in))
		if got, err := d.Run(syms); err != nil || got != want {
			t.Fatalf("DPDA(%q) = %v,%v want %v", in, got, err, want)
		}
		if got := h.Accepts(syms); got != want {
			t.Fatalf("hDPDA(%q) = %v, want %v", in, got, want)
		}
		if got := hc.Accepts(syms); got != want {
			t.Fatalf("homogenized(%q) = %v, want %v", in, got, want)
		}
	}
}

// Property via testing/quick: for random bit-strings w, w+"c"+reverse(w)
// is always accepted.
func TestPalindromeConstructedAlwaysAccepts(t *testing.T) {
	h := PalindromeHDPDA()
	f := func(bits []bool) bool {
		if len(bits) > 200 {
			bits = bits[:200]
		}
		var b strings.Builder
		for _, x := range bits {
			if x {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		w := b.String()
		rev := make([]byte, len(w))
		for i := 0; i < len(w); i++ {
			rev[i] = w[len(w)-1-i]
		}
		return h.Accepts(BytesToSymbols([]byte(w + "c" + string(rev))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPalindromeStallAccounting(t *testing.T) {
	h := PalindromeHDPDA()
	res, err := h.Run(BytesToSymbols([]byte("01c10")), ExecOptions{CollectReports: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatal("expected accept")
	}
	// Exactly one ε-activation: the final accept state.
	if res.EpsilonStalls != 1 {
		t.Errorf("EpsilonStalls = %d, want 1", res.EpsilonStalls)
	}
	if res.Consumed != 5 {
		t.Errorf("Consumed = %d, want 5", res.Consumed)
	}
	if res.MaxStackDepth != 2 {
		t.Errorf("MaxStackDepth = %d, want 2", res.MaxStackDepth)
	}
	if len(res.Reports) != 1 || res.Reports[0].Pos != 5 {
		t.Errorf("Reports = %+v, want one report at pos 5", res.Reports)
	}
}
