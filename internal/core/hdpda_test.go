package core

import (
	"strings"
	"testing"
)

// tinyMachine builds a minimal valid machine: start → a('x',*,push 1) →
// b('y',1,pop 1,accept).
func tinyMachine() *HDPDA {
	h := &HDPDA{Name: "tiny"}
	h.Start = h.AddState(State{Label: "start", Epsilon: true, Stack: AllSymbols()})
	a := h.AddState(State{
		Label: "a", Input: NewSymbolSet('x'), Stack: AllSymbols(),
		Op: StackOp{Push: 1, HasPush: true},
	})
	b := h.AddState(State{
		Label: "b", Input: NewSymbolSet('y'), Stack: NewSymbolSet(1),
		Op: StackOp{Pop: 1}, Accept: true,
	})
	h.AddEdge(h.Start, a)
	h.AddEdge(a, b)
	return h
}

func TestValidateOK(t *testing.T) {
	if err := tinyMachine().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsEmptyMachine(t *testing.T) {
	h := &HDPDA{Name: "empty"}
	if err := h.Validate(); err == nil {
		t.Fatal("expected error for empty machine")
	}
}

func TestValidateRejectsBadStart(t *testing.T) {
	h := tinyMachine()
	h.Start = 99
	if err := h.Validate(); err == nil {
		t.Fatal("expected error for out-of-range start")
	}
}

func TestValidateRejectsNoInputMatch(t *testing.T) {
	h := tinyMachine()
	h.States[1].Input = SymbolSet{} // non-ε state with empty input label
	if err := h.Validate(); err == nil || !strings.Contains(err.Error(), "matches no input") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsNoStackMatch(t *testing.T) {
	h := tinyMachine()
	h.States[2].Stack = SymbolSet{}
	if err := h.Validate(); err == nil || !strings.Contains(err.Error(), "matches no stack") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsPushBottom(t *testing.T) {
	h := tinyMachine()
	h.States[1].Op = StackOp{Push: BottomOfStack, HasPush: true}
	if err := h.Validate(); err == nil || !strings.Contains(err.Error(), "⊥") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsInputNondeterminism(t *testing.T) {
	h := tinyMachine()
	// Second successor of start overlapping a's input and stack labels.
	c := h.AddState(State{Label: "c", Input: NewSymbolSet('x'), Stack: AllSymbols()})
	h.AddEdge(h.Start, c)
	if err := h.Validate(); err == nil || !strings.Contains(err.Error(), "overlap on input") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsEpsilonInputOverlap(t *testing.T) {
	h := tinyMachine()
	c := h.AddState(State{Label: "c", Epsilon: true, Stack: AllSymbols()})
	h.AddEdge(h.Start, c) // ε-successor overlapping a's wildcard stack
	if err := h.Validate(); err == nil || !strings.Contains(err.Error(), "ε-successor and input successor") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateRejectsDoubleEpsilon(t *testing.T) {
	h := &HDPDA{Name: "dbl"}
	h.Start = h.AddState(State{Label: "start", Epsilon: true, Stack: AllSymbols()})
	e1 := h.AddState(State{Label: "e1", Epsilon: true, Stack: AllSymbols()})
	e2 := h.AddState(State{Label: "e2", Epsilon: true, Stack: NewSymbolSet(BottomOfStack)})
	h.AddEdge(h.Start, e1)
	h.AddEdge(h.Start, e2)
	if err := h.Validate(); err == nil || !strings.Contains(err.Error(), "ε-successors") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateAllowsDisjointStacks(t *testing.T) {
	h := &HDPDA{Name: "disjoint"}
	h.Start = h.AddState(State{Label: "start", Epsilon: true, Stack: AllSymbols()})
	a := h.AddState(State{Label: "a", Input: NewSymbolSet('x'), Stack: NewSymbolSet(1)})
	b := h.AddState(State{Label: "b", Input: NewSymbolSet('x'), Stack: NewSymbolSet(2)})
	h.AddEdge(h.Start, a)
	h.AddEdge(h.Start, b)
	if err := h.Validate(); err != nil {
		t.Fatalf("disjoint stack labels should be deterministic: %v", err)
	}
}

func TestAddEdgeSortedNoDup(t *testing.T) {
	h := tinyMachine()
	h.AddEdge(0, 2)
	h.AddEdge(0, 1) // duplicate
	h.AddEdge(0, 2) // duplicate
	succ := h.States[0].Succ
	if len(succ) != 2 || succ[0] != 1 || succ[1] != 2 {
		t.Fatalf("Succ = %v, want [1 2]", succ)
	}
}

func TestRemoveUnreachable(t *testing.T) {
	h := tinyMachine()
	// Dead state with an edge to a live state.
	d := h.AddState(State{Label: "dead", Input: NewSymbolSet('z'), Stack: AllSymbols()})
	h.AddEdge(d, 1)
	if n := h.RemoveUnreachable(); n != 1 {
		t.Fatalf("removed %d, want 1", n)
	}
	if h.NumStates() != 3 {
		t.Fatalf("NumStates = %d, want 3", h.NumStates())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	// Behaviour preserved.
	if !h.Accepts(BytesToSymbols([]byte("xy"))) {
		t.Fatal("machine no longer accepts xy")
	}
}

func TestRemoveUnreachableNoop(t *testing.T) {
	h := tinyMachine()
	if n := h.RemoveUnreachable(); n != 0 {
		t.Fatalf("removed %d, want 0", n)
	}
}

func TestCloneIsDeep(t *testing.T) {
	h := tinyMachine()
	c := h.Clone()
	c.States[1].Label = "mutated"
	c.AddEdge(1, 1)
	if h.States[1].Label == "mutated" {
		t.Error("clone shares state slice")
	}
	if len(h.States[1].Succ) != 1 {
		t.Error("clone shares successor slices")
	}
}

func TestCounters(t *testing.T) {
	h := tinyMachine()
	if h.CountEdges() != 2 {
		t.Errorf("CountEdges = %d", h.CountEdges())
	}
	if h.EpsilonStates() != 1 {
		t.Errorf("EpsilonStates = %d", h.EpsilonStates())
	}
	if h.MaxFanout() != 1 {
		t.Errorf("MaxFanout = %d", h.MaxFanout())
	}
}

func TestStateString(t *testing.T) {
	op := StackOp{Pop: 2, Push: 'a', HasPush: true}
	if s := op.String(); !strings.Contains(s, "pop 2") || !strings.Contains(s, "push") {
		t.Errorf("StackOp.String = %q", s)
	}
	if !(StackOp{}).IsNop() {
		t.Error("zero StackOp should be nop")
	}
	if (StackOp{Pop: 1}).IsNop() {
		t.Error("pop 1 is not a nop")
	}
}
