package core

import (
	"errors"
	"testing"
)

// counterMachine accepts a^n b^n (n ≥ 1) using pushes and pops — a
// classic DPDA language exercising stack depth.
func counterMachine() *HDPDA {
	h := &HDPDA{Name: "anbn"}
	h.Start = h.AddState(State{Label: "start", Epsilon: true, Stack: AllSymbols()})
	pushA := h.AddState(State{
		Label: "a/push", Input: NewSymbolSet('a'), Stack: AllSymbols(),
		Op: StackOp{Push: 1, HasPush: true},
	})
	popB := h.AddState(State{
		Label: "b/pop", Input: NewSymbolSet('b'), Stack: NewSymbolSet(1),
		Op: StackOp{Pop: 1},
	})
	acc := h.AddState(State{
		Label: "ε⊥/acc", Epsilon: true, Stack: NewSymbolSet(BottomOfStack), Accept: true,
	})
	h.AddEdge(h.Start, pushA)
	h.AddEdge(pushA, pushA)
	h.AddEdge(pushA, popB)
	h.AddEdge(popB, popB)
	h.AddEdge(popB, acc)
	return h
}

func TestCounterMachine(t *testing.T) {
	h := counterMachine()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in   string
		want bool
	}{
		{"ab", true}, {"aabb", true}, {"aaabbb", true},
		{"", false}, {"a", false}, {"b", false}, {"ba", false},
		{"aab", false}, {"abb", false}, {"abab", false},
	}
	for _, tc := range cases {
		if got := h.Accepts(BytesToSymbols([]byte(tc.in))); got != tc.want {
			t.Errorf("anbn(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestStackOverflow(t *testing.T) {
	h := counterMachine()
	h.StackDepth = 4
	in := BytesToSymbols([]byte("aaaaaaaa")) // 8 pushes > depth 4
	_, err := h.Run(in, ExecOptions{})
	if !errors.Is(err, ErrStackOverflow) {
		t.Fatalf("err = %v, want ErrStackOverflow", err)
	}
}

func TestStackOverflowRespectsOptionOverride(t *testing.T) {
	h := counterMachine()
	h.StackDepth = 4
	in := BytesToSymbols([]byte("aaaaaaaabbbbbbbb"))
	res, err := h.Run(in, ExecOptions{StackDepth: 64})
	if err != nil || !res.Accepted {
		t.Fatalf("res=%+v err=%v, want accept with larger stack", res, err)
	}
}

func TestStackUnderflow(t *testing.T) {
	// A machine that pops more than it pushed.
	h := &HDPDA{Name: "under"}
	h.Start = h.AddState(State{Label: "start", Epsilon: true, Stack: AllSymbols()})
	bad := h.AddState(State{
		Label: "x/pop2", Input: NewSymbolSet('x'), Stack: AllSymbols(),
		Op: StackOp{Pop: 2},
	})
	h.AddEdge(h.Start, bad)
	_, err := h.Run(BytesToSymbols([]byte("x")), ExecOptions{})
	if !errors.Is(err, ErrStackUnderflow) {
		t.Fatalf("err = %v, want ErrStackUnderflow", err)
	}
}

func TestEpsilonLoopDetected(t *testing.T) {
	// Two ε-states that push and pop forever: start → e1 → e2 → e1 ...
	h := &HDPDA{Name: "loop"}
	h.Start = h.AddState(State{Label: "start", Epsilon: true, Stack: AllSymbols()})
	e1 := h.AddState(State{
		Label: "e1", Epsilon: true, Stack: AllSymbols(),
		Op: StackOp{Push: 1, HasPush: true},
	})
	e2 := h.AddState(State{
		Label: "e2", Epsilon: true, Stack: NewSymbolSet(1),
		Op: StackOp{Pop: 1},
	})
	h.AddEdge(h.Start, e1)
	h.AddEdge(e1, e2)
	h.AddEdge(e2, e1)
	_, err := h.Run(nil, ExecOptions{})
	if !errors.Is(err, ErrEpsilonLimit) {
		t.Fatalf("err = %v, want ErrEpsilonLimit", err)
	}
}

func TestJamReported(t *testing.T) {
	h := counterMachine()
	res, err := h.Run(BytesToSymbols([]byte("ba")), ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Jammed || res.Accepted {
		t.Fatalf("res = %+v, want jam", res)
	}
	if res.Consumed != 0 {
		t.Errorf("Consumed = %d, want 0", res.Consumed)
	}
}

func TestMultipopSemantics(t *testing.T) {
	// Push three, multipop 3 in one state, accept on ⊥.
	h := &HDPDA{Name: "mp"}
	h.Start = h.AddState(State{Label: "start", Epsilon: true, Stack: AllSymbols()})
	push := h.AddState(State{
		Label: "a/push", Input: NewSymbolSet('a'), Stack: AllSymbols(),
		Op: StackOp{Push: 7, HasPush: true},
	})
	mp := h.AddState(State{
		Label: "z/pop3", Input: NewSymbolSet('z'), Stack: NewSymbolSet(7),
		Op: StackOp{Pop: 3},
	})
	acc := h.AddState(State{Label: "acc", Epsilon: true, Stack: NewSymbolSet(BottomOfStack), Accept: true})
	h.AddEdge(h.Start, push)
	h.AddEdge(push, push)
	h.AddEdge(push, mp)
	h.AddEdge(mp, acc)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if !h.Accepts(BytesToSymbols([]byte("aaaz"))) {
		t.Error("aaaz should be accepted (multipop 3)")
	}
	if h.Accepts(BytesToSymbols([]byte("aaz"))) {
		t.Error("aaz should underflow or reject, not accept")
	}
}

func TestExecutionStepAPI(t *testing.T) {
	h := counterMachine()
	e := NewExecution(h, ExecOptions{})
	if e.Pos() != 0 || e.StackLen() != 0 || e.TOS() != BottomOfStack {
		t.Fatal("fresh execution state wrong")
	}
	if n, err := e.DrainEpsilon(); n != 0 || err != nil {
		t.Fatalf("drain on start = %d,%v", n, err)
	}
	ok, err := e.Feed('a')
	if !ok || err != nil {
		t.Fatalf("Feed(a) = %v,%v", ok, err)
	}
	if e.StackLen() != 1 || e.TOS() != 1 {
		t.Fatalf("after push: len=%d tos=%d", e.StackLen(), e.TOS())
	}
	ok, err = e.Feed('b')
	if !ok || err != nil {
		t.Fatalf("Feed(b) = %v,%v", ok, err)
	}
	n, err := e.DrainEpsilon()
	if n != 1 || err != nil {
		t.Fatalf("drain = %d,%v, want 1 ε-step", n, err)
	}
	if !e.InAccept() {
		t.Fatal("expected accept state")
	}
	res := e.Result()
	if res.EpsilonStalls != 1 || res.Consumed != 2 {
		t.Fatalf("Result = %+v", res)
	}
}

func TestOnReportCallback(t *testing.T) {
	h := counterMachine()
	var got []Report
	_, err := h.Run(BytesToSymbols([]byte("aabb")), ExecOptions{
		OnReport: func(r Report) { got = append(got, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Pos != 4 {
		t.Fatalf("reports = %+v", got)
	}
}

func TestDPDAValidateCatchesNondeterminism(t *testing.T) {
	d := &DPDA{
		Name: "bad", NumStates: 1, Start: 0, Accept: map[int]bool{},
		Trans: []DPDATransition{
			{From: 0, Input: 'a', StackTop: 0, To: 0},
			{From: 0, Epsilon: true, StackTop: 0, To: 0},
		},
	}
	if err := d.Validate(); err == nil {
		t.Fatal("expected ε/input overlap error")
	}
	d2 := &DPDA{
		Name: "dup", NumStates: 1, Start: 0, Accept: map[int]bool{},
		Trans: []DPDATransition{
			{From: 0, Input: 'a', StackTop: 0, To: 0},
			{From: 0, Input: 'a', StackTop: 0, To: 0},
		},
	}
	if err := d2.Validate(); err == nil {
		t.Fatal("expected duplicate-transition error")
	}
}

func TestDPDAEmptyInputAcceptance(t *testing.T) {
	// Start state accepting: empty input accepted, by DPDA and its
	// homogenized form.
	d := &DPDA{
		Name: "emptyok", NumStates: 2, Start: 0,
		Accept: map[int]bool{0: true},
		Trans: []DPDATransition{
			{From: 0, Input: 'a', StackTop: 0, To: 1},
		},
	}
	if ok, err := d.Run(nil); err != nil || !ok {
		t.Fatalf("DPDA empty = %v,%v", ok, err)
	}
	h, err := d.ToHomogeneous()
	if err != nil {
		t.Fatal(err)
	}
	if !h.Accepts(nil) {
		t.Fatal("homogenized machine rejects empty input")
	}
	if h.Accepts(BytesToSymbols([]byte("a"))) {
		t.Fatal("'a' should not be accepted (state 1 not accepting)")
	}
}
