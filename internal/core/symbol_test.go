package core

import (
	"testing"
	"testing/quick"
)

func TestSymbolSetBasics(t *testing.T) {
	var s SymbolSet
	if !s.IsEmpty() {
		t.Fatal("zero set should be empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(255)
	for _, sym := range []Symbol{0, 63, 64, 255} {
		if !s.Contains(sym) {
			t.Errorf("set should contain %d", sym)
		}
	}
	if s.Contains(1) || s.Contains(128) {
		t.Error("set contains symbols never added")
	}
	if got := s.Len(); got != 4 {
		t.Errorf("Len = %d, want 4", got)
	}
	s.Remove(63)
	if s.Contains(63) || s.Len() != 3 {
		t.Error("Remove failed")
	}
}

func TestSymbolSetAll(t *testing.T) {
	all := AllSymbols()
	if all.Len() != 256 {
		t.Fatalf("AllSymbols Len = %d, want 256", all.Len())
	}
	for c := 0; c < 256; c++ {
		if !all.Contains(Symbol(c)) {
			t.Fatalf("AllSymbols missing %d", c)
		}
	}
	if all.String() != "*" {
		t.Errorf("AllSymbols String = %q, want *", all.String())
	}
}

func TestSymbolRange(t *testing.T) {
	r := SymbolRange('a', 'z')
	if r.Len() != 26 {
		t.Fatalf("range len = %d, want 26", r.Len())
	}
	if !r.Contains('a') || !r.Contains('z') || r.Contains('A') {
		t.Error("range membership wrong")
	}
	// Full-range must not overflow the loop.
	full := SymbolRange(0, 255)
	if full != AllSymbols() {
		t.Error("SymbolRange(0,255) != AllSymbols()")
	}
}

func TestSymbolSetOps(t *testing.T) {
	a := NewSymbolSet(1, 2, 3)
	b := NewSymbolSet(3, 4, 5)
	if got := a.Union(b).Len(); got != 5 {
		t.Errorf("union len = %d, want 5", got)
	}
	inter := a.Intersect(b)
	if inter.Len() != 1 || !inter.Contains(3) {
		t.Errorf("intersect = %v, want {3}", inter.Symbols())
	}
	if !a.Intersects(b) {
		t.Error("a and b should intersect")
	}
	if a.Intersects(NewSymbolSet(9)) {
		t.Error("disjoint sets reported intersecting")
	}
}

func TestSymbolSetSymbolsSorted(t *testing.T) {
	s := NewSymbolSet(200, 5, 100, 64, 63)
	syms := s.Symbols()
	want := []Symbol{5, 63, 64, 100, 200}
	if len(syms) != len(want) {
		t.Fatalf("Symbols = %v, want %v", syms, want)
	}
	for i := range want {
		if syms[i] != want[i] {
			t.Fatalf("Symbols = %v, want %v", syms, want)
		}
	}
}

func TestSymbolSetString(t *testing.T) {
	s := NewSymbolSet(0x41, 0x42, 0x43, 0x50)
	if got := s.String(); got != "[0x41-0x43,0x50]" {
		t.Errorf("String = %q", got)
	}
	var empty SymbolSet
	if empty.String() != "∅" {
		t.Errorf("empty String = %q", empty.String())
	}
}

// Property: membership after NewSymbolSet matches the input list.
func TestSymbolSetMembershipProperty(t *testing.T) {
	f := func(syms []byte, probe byte) bool {
		set := NewSymbolSet(BytesToSymbols(syms)...)
		want := false
		for _, s := range syms {
			if s == probe {
				want = true
				break
			}
		}
		return set.Contains(Symbol(probe)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Union is commutative and Intersect distributes membership.
func TestSymbolSetAlgebraProperty(t *testing.T) {
	f := func(xs, ys []byte, probe byte) bool {
		a := NewSymbolSet(BytesToSymbols(xs)...)
		b := NewSymbolSet(BytesToSymbols(ys)...)
		p := Symbol(probe)
		if a.Union(b) != b.Union(a) {
			return false
		}
		if a.Union(b).Contains(p) != (a.Contains(p) || b.Contains(p)) {
			return false
		}
		return a.Intersect(b).Contains(p) == (a.Contains(p) && b.Contains(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
