package core

import "testing"

// loopMachine accepts (ab)* style traffic forever: q1 consumes 'a' and
// pushes X, q2 is an ε-state popping it again, so a run alternates
// Feed/StepEpsilon without the stack ever growing — ideal for steady-
// state allocation measurement.
func loopMachine() *HDPDA {
	return &HDPDA{
		Name: "loop",
		States: []State{
			{ID: 0, Label: "start", Input: NewSymbolSet('a'), Stack: AllSymbols(), Succ: []StateID{1}},
			{ID: 1, Label: "push", Input: NewSymbolSet('a'), Stack: AllSymbols(),
				Op: StackOp{HasPush: true, Push: 'X'}, Succ: []StateID{2}},
			{ID: 2, Label: "pop", Epsilon: true, Stack: NewSymbolSet('X'),
				Op: StackOp{Pop: 1}, Succ: []StateID{1}},
		},
		Start: 0,
	}
}

// The telemetry integration contract: with hooks disabled (the default),
// Feed and StepEpsilon must not allocate at steady state — the
// instrumented build costs exactly one nil check per activation.
func TestStepZeroAllocsTelemetryDisabled(t *testing.T) {
	m := loopMachine()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	e := NewExecution(m, ExecOptions{})
	step := func() {
		if ok, err := e.Feed('a'); !ok || err != nil {
			t.Fatalf("feed: ok=%v err=%v", ok, err)
		}
		if ok, err := e.StepEpsilon(); !ok || err != nil {
			t.Fatalf("ε-step: ok=%v err=%v", ok, err)
		}
	}
	step() // warm up: grow the stack slice to steady-state capacity
	if allocs := testing.AllocsPerRun(1000, step); allocs != 0 {
		t.Errorf("Feed+StepEpsilon = %v allocs/op with telemetry disabled, want 0", allocs)
	}
}

// Scalar-argument hooks add no allocations either: enabling telemetry
// costs atomic updates, not garbage.
func TestStepZeroAllocsWithHooks(t *testing.T) {
	m := loopMachine()
	var steps, stalls, stackOps int64
	e := NewExecution(m, ExecOptions{Hooks: &ExecHooks{
		Step: func(_ StateID, eps bool) {
			steps++
			if eps {
				stalls++
			}
		},
		StackOp: func(_ StackOp, _ int) { stackOps++ },
	}})
	step := func() {
		e.Feed('a')
		e.StepEpsilon()
	}
	step()
	if allocs := testing.AllocsPerRun(1000, step); allocs != 0 {
		t.Errorf("hooked stepping = %v allocs/op, want 0", allocs)
	}
	if steps == 0 || stalls == 0 || stackOps == 0 {
		t.Errorf("hooks not invoked: steps=%d stalls=%d stackOps=%d", steps, stalls, stackOps)
	}
	if stalls*2 != steps {
		t.Errorf("stalls=%d, want half of steps=%d", stalls, steps)
	}
}

func TestJamHook(t *testing.T) {
	m := loopMachine()
	jamPos, jamSym := -1, Symbol(0)
	e := NewExecution(m, ExecOptions{Hooks: &ExecHooks{
		Jam: func(pos int, sym Symbol) { jamPos, jamSym = pos, sym },
	}})
	if ok, _ := e.Feed('a'); !ok {
		t.Fatal("feed 'a' jammed")
	}
	if _, err := e.DrainEpsilon(); err != nil {
		t.Fatal(err)
	}
	if ok, _ := e.Feed('z'); ok {
		t.Fatal("feed 'z' did not jam")
	}
	if jamPos != 1 || jamSym != 'z' {
		t.Errorf("jam hook saw pos=%d sym=%q, want 1,'z'", jamPos, jamSym)
	}
}
