package core

import (
	"errors"
	"fmt"
)

// Execution errors. Stack faults correspond to hardware machine faults in
// ASPEN (the stacks are fixed 256-entry structures); the ε-loop error
// guards against non-terminating machines, which a valid compiler never
// produces.
var (
	ErrStackOverflow  = errors.New("core: stack overflow")
	ErrStackUnderflow = errors.New("core: stack underflow (popped ⊥)")
	ErrEpsilonLimit   = errors.New("core: ε-transition limit exceeded (ε-loop?)")
)

// Report is a report event: an accept state was activated after Pos input
// symbols had been consumed.
type Report struct {
	Pos   int     // input symbols consumed when the report fired
	State StateID // reporting state
	Code  int32   // the state's application-defined report code
}

// Result summarizes one run of an hDPDA over an input.
type Result struct {
	// Accepted is true when the whole input was consumed and the machine
	// ended (after draining ε-moves) in an accept state.
	Accepted bool
	// Consumed is the number of input symbols processed before the run
	// ended or jammed.
	Consumed int
	// Jammed is true when no successor was enabled for some input symbol
	// (the DPDA rejects by jamming).
	Jammed bool
	// Reports lists accept-state activations in order (empty unless
	// CollectReports was set).
	Reports []Report
	// EpsilonStalls counts ε-state activations. Each one stalls the
	// input stream for a cycle on ASPEN, so total symbol-processing
	// cycles = Consumed + EpsilonStalls.
	EpsilonStalls int
	// Steps counts all state activations (input-consuming and ε).
	Steps int
	// FinalState is the active state when the run ended.
	FinalState StateID
	// MaxStackDepth is the high-water mark of stack use (excluding ⊥).
	MaxStackDepth int
	// ReportCount counts accept-state activations even when reports are
	// not collected.
	ReportCount int
}

// ExecHooks observes fine-grained execution events for telemetry.
// Every field is optional, and the whole struct hangs off a single
// pointer in ExecOptions: with Hooks nil the stepping functions pay one
// nil check and allocate nothing, so the disabled path stays on the
// hot-loop fast path (enforced by a testing.AllocsPerRun regression
// test). Hook arguments are scalars — invoking them allocates nothing
// either.
type ExecHooks struct {
	// Step fires on every state activation; epsilon marks ε (input
	// stall) cycles, so counting both sides reproduces ASPEN's
	// symbol-cycles + stall-cycles split.
	Step func(id StateID, epsilon bool)
	// StackOp fires on every non-nop stack update with the depth after
	// the update (excluding ⊥).
	StackOp func(op StackOp, depth int)
	// Report fires on accept-state activations (in addition to
	// ExecOptions.OnReport, which predates the hook set).
	Report func(Report)
	// Jam fires when Feed finds no enabled successor: pos is the number
	// of symbols consumed before the offending symbol.
	Jam func(pos int, sym Symbol)
}

// ExecOptions configures an Execution.
type ExecOptions struct {
	// StackDepth overrides the machine's stack depth (0 = machine
	// default, which itself defaults to DefaultStackDepth).
	StackDepth int
	// EpsilonBudget bounds consecutive ε-activations between two input
	// symbols (0 = default of 4×states+16). Exceeding it returns
	// ErrEpsilonLimit.
	EpsilonBudget int
	// CollectReports records each report event in Result.Reports.
	CollectReports bool
	// OnReport, when non-nil, is invoked for every report event
	// (independent of CollectReports).
	OnReport func(Report)
	// Hooks, when non-nil, receives step/stall/stack-op/report/jam
	// events (see ExecHooks).
	Hooks *ExecHooks
	// Faults, when non-nil, is consulted on every state activation and
	// may corrupt the run (see FaultInjector). nil models a perfect
	// fabric and adds one nil check to the step path.
	Faults FaultInjector
}

// Execution is an in-progress run of an hDPDA. The cycle-accurate
// architecture simulator drives the same Execution stepping functions the
// functional Run uses, so functional and simulated semantics are
// identical by construction.
type Execution struct {
	M *HDPDA

	cur      StateID
	stack    []Symbol
	depth    int // max usable entries
	pos      int // input symbols consumed
	res      Result
	opts     ExecOptions
	epsSeq   int // consecutive ε-activations since last input symbol
	epsLimit int
}

// NewExecution creates a fresh execution of m positioned at its start
// state with an empty stack (⊥ pre-loaded).
func NewExecution(m *HDPDA, opts ExecOptions) *Execution {
	depth := opts.StackDepth
	if depth == 0 {
		depth = m.StackDepth
	}
	if depth == 0 {
		depth = DefaultStackDepth
	}
	lim := opts.EpsilonBudget
	if lim == 0 {
		// Legitimate ε-cascades (LR reduction chains) are bounded by the
		// stack contents plus per-state work, so scale the default with
		// both.
		lim = 4*(len(m.States)+depth) + 64
	}
	e := &Execution{
		M:        m,
		cur:      m.Start,
		stack:    make([]Symbol, 1, 16),
		depth:    depth,
		opts:     opts,
		epsLimit: lim,
	}
	e.stack[0] = BottomOfStack
	e.res.FinalState = m.Start
	return e
}

// Reset rewinds the execution to the machine's start configuration —
// start state, empty stack (⊥ pre-loaded), zeroed statistics — without
// reallocating. The stack keeps its grown capacity, so a pooled
// Execution reaches steady state after one run and resets allocation-
// free thereafter; a fresh run over the same input is then
// indistinguishable from a run on a newly constructed Execution.
// Result.Reports is dropped (not truncated) because returned Results
// share its backing array.
func (e *Execution) Reset() {
	e.cur = e.M.Start
	e.stack = e.stack[:1]
	e.stack[0] = BottomOfStack
	e.pos = 0
	e.epsSeq = 0
	e.res = Result{FinalState: e.M.Start}
}

// Pos returns the number of input symbols consumed so far.
func (e *Execution) Pos() int { return e.pos }

// Current returns the active state.
func (e *Execution) Current() StateID { return e.cur }

// TOS returns the current top-of-stack symbol.
func (e *Execution) TOS() Symbol { return e.stack[len(e.stack)-1] }

// StackLen returns the number of symbols on the stack above ⊥.
func (e *Execution) StackLen() int { return len(e.stack) - 1 }

// activate performs the entry actions of state id: stack op, report.
func (e *Execution) activate(id StateID) error {
	st := &e.M.States[id]
	// Pop (possibly multipop) then push, per the stack-update stage.
	if st.Op.Pop > 0 {
		n := int(st.Op.Pop)
		if n > len(e.stack)-1 {
			return fmt.Errorf("%w: state %d (%s) pops %d with depth %d",
				ErrStackUnderflow, id, st.Label, n, len(e.stack)-1)
		}
		e.stack = e.stack[:len(e.stack)-n]
	}
	if st.Op.HasPush {
		if len(e.stack)-1 >= e.depth {
			return fmt.Errorf("%w: state %d (%s) at depth %d",
				ErrStackOverflow, id, st.Label, e.depth)
		}
		e.stack = append(e.stack, st.Op.Push)
	}
	if d := len(e.stack) - 1; d > e.res.MaxStackDepth {
		e.res.MaxStackDepth = d
	}
	e.cur = id
	e.res.FinalState = id
	e.res.Steps++
	if st.Epsilon {
		e.res.EpsilonStalls++
		e.epsSeq++
	} else {
		e.epsSeq = 0
	}
	h := e.opts.Hooks
	if h != nil {
		if h.Step != nil {
			h.Step(id, st.Epsilon)
		}
		if h.StackOp != nil && !st.Op.IsNop() {
			h.StackOp(st.Op, len(e.stack)-1)
		}
	}
	if st.Accept {
		e.res.ReportCount++
		if e.opts.CollectReports || e.opts.OnReport != nil || (h != nil && h.Report != nil) {
			r := Report{Pos: e.pos, State: id, Code: st.Report}
			if e.opts.CollectReports {
				e.res.Reports = append(e.res.Reports, r)
			}
			if e.opts.OnReport != nil {
				e.opts.OnReport(r)
			}
			if h != nil && h.Report != nil {
				h.Report(r)
			}
		}
	}
	if inj := e.opts.Faults; inj != nil {
		if f, ok := inj.Activation(e.res.Steps, e.cur, e.TOS()); ok {
			if err := e.applyFault(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// EpsilonEnabled returns the enabled ε-successor of the current state, or
// InvalidState if none. Determinism guarantees at most one.
func (e *Execution) EpsilonEnabled() StateID {
	tos := e.TOS()
	for _, t := range e.M.States[e.cur].Succ {
		st := &e.M.States[t]
		if st.Epsilon && st.Stack.Contains(tos) {
			return t
		}
	}
	return InvalidState
}

// StepEpsilon takes one enabled ε-transition. It returns false when no
// ε-successor is enabled.
func (e *Execution) StepEpsilon() (bool, error) {
	t := e.EpsilonEnabled()
	if t == InvalidState {
		return false, nil
	}
	if e.epsSeq >= e.epsLimit {
		return false, fmt.Errorf("%w: state %d after %d ε-steps", ErrEpsilonLimit, e.cur, e.epsSeq)
	}
	return true, e.activate(t)
}

// DrainEpsilon takes ε-transitions until none is enabled, returning the
// number taken (= input stall cycles on ASPEN).
func (e *Execution) DrainEpsilon() (int, error) {
	n := 0
	for {
		ok, err := e.StepEpsilon()
		if err != nil {
			return n, err
		}
		if !ok {
			return n, nil
		}
		n++
	}
}

// Feed consumes one input symbol. The caller must have drained ε-moves
// first (Run does this). It returns false when no successor is enabled
// (the machine jams and the input is rejected).
func (e *Execution) Feed(sym Symbol) (bool, error) {
	tos := e.TOS()
	for _, t := range e.M.States[e.cur].Succ {
		st := &e.M.States[t]
		if !st.Epsilon && st.Input.Contains(sym) && st.Stack.Contains(tos) {
			// Count the symbol before activating so a report fired by
			// the consuming state itself (ε-merged machines) sees the
			// same position a report from a trailing ε-state would.
			e.pos++
			e.res.Consumed = e.pos
			if err := e.activate(t); err != nil {
				return false, err
			}
			return true, nil
		}
	}
	if h := e.opts.Hooks; h != nil && h.Jam != nil {
		h.Jam(e.pos, sym)
	}
	return false, nil
}

// InAccept reports whether the active state is an accept state.
func (e *Execution) InAccept() bool { return e.M.States[e.cur].Accept }

// Result returns a snapshot of the run statistics so far.
func (e *Execution) Result() Result { return e.res }

// Run executes the machine over input: for each symbol, drain ε-moves
// then consume the symbol; after the last symbol, drain trailing ε-moves.
// The input is accepted when it is fully consumed and the machine ends in
// an accept state.
func (m *HDPDA) Run(input []Symbol, opts ExecOptions) (Result, error) {
	e := NewExecution(m, opts)
	for _, sym := range input {
		if _, err := e.DrainEpsilon(); err != nil {
			return e.res, err
		}
		ok, err := e.Feed(sym)
		if err != nil {
			return e.res, err
		}
		if !ok {
			e.res.Jammed = true
			return e.res, nil
		}
	}
	if _, err := e.DrainEpsilon(); err != nil {
		return e.res, err
	}
	e.res.Accepted = e.InAccept()
	return e.res, nil
}

// Accepts is a convenience wrapper returning only the accept decision.
func (m *HDPDA) Accepts(input []Symbol) bool {
	r, err := m.Run(input, ExecOptions{})
	return err == nil && r.Accepted
}

// BytesToSymbols converts raw bytes to input symbols.
func BytesToSymbols(b []byte) []Symbol {
	out := make([]Symbol, len(b))
	for i, c := range b {
		out[i] = Symbol(c)
	}
	return out
}
