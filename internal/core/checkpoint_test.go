package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// runOutcome is the comparable trace of one run: the full Result plus
// the terminal error, which together are everything an observer of the
// machine can see.
type runOutcome struct {
	res Result
	err string
}

func outcomeOf(res Result, err error) runOutcome {
	o := runOutcome{res: res}
	if err != nil {
		o.err = err.Error()
	}
	return o
}

// drive feeds input through e with the Run protocol (drain ε, feed,
// final drain, accept check), stopping after at most maxSyms symbols.
// It returns the number of symbols consumed and whether the run ended
// (jam, error, or input exhausted with the final drain done).
func drive(e *Execution, input []Symbol, maxSyms int) (int, bool, error) {
	fed := 0
	for _, sym := range input {
		if fed >= maxSyms {
			return fed, false, nil
		}
		if _, err := e.DrainEpsilon(); err != nil {
			return fed, true, err
		}
		ok, err := e.Feed(sym)
		if err != nil {
			return fed, true, err
		}
		if !ok {
			e.res.Jammed = true
			return fed, true, nil
		}
		fed++
	}
	if _, err := e.DrainEpsilon(); err != nil {
		return fed, true, err
	}
	e.res.Accepted = e.InAccept()
	return fed, true, nil
}

// finish drives the remaining input to completion and snapshots the
// outcome.
func finish(e *Execution, rest []Symbol) runOutcome {
	_, _, err := drive(e, rest, len(rest)+1)
	return outcomeOf(e.Result(), err)
}

// checkReplay asserts the replay-equivalence property for one
// (machine, input, checkpoint point) triple: restoring a mid-run
// checkpoint and re-feeding the remaining symbols must reproduce the
// uninterrupted run's verdict, statistics, and reports exactly —
// whether the restore target is a fresh execution or the original one
// after it diverged (the recovery path: corrupt, roll back, replay).
func checkReplay(t *testing.T, m *HDPDA, input []Symbol, cpAt int) {
	t.Helper()
	opts := ExecOptions{CollectReports: true}

	// Reference: uninterrupted run.
	ref := NewExecution(m, opts)
	want := finish(ref, input)

	// Run to the checkpoint point.
	e := NewExecution(m, opts)
	fed, ended, err := drive(e, input, cpAt)
	if ended {
		// The run terminated before the checkpoint point (jam, machine
		// fault, or short input): the triple is vacuous, but the partial
		// runs must still agree.
		if got := outcomeOf(e.Result(), err); !reflect.DeepEqual(got, want) {
			t.Fatalf("pre-checkpoint termination diverged from reference:\n got %+v\nwant %+v", got, want)
		}
		return
	}
	var cp Checkpoint
	e.Checkpoint(&cp)
	rest := input[fed:]

	// Continue the original execution to the end: this is the
	// uninterrupted path and must match the reference.
	if got := finish(e, rest); !reflect.DeepEqual(got, want) {
		t.Fatalf("uninterrupted run diverged from reference:\n got %+v\nwant %+v", got, want)
	}

	// Restore into a fresh execution and replay.
	fresh := NewExecution(m, opts)
	if err := fresh.Restore(&cp); err != nil {
		t.Fatalf("restore into fresh execution rejected: %v", err)
	}
	if got := finish(fresh, rest); !reflect.DeepEqual(got, want) {
		t.Fatalf("restore into fresh execution diverged:\n got %+v\nwant %+v", got, want)
	}

	// Roll the original (now-completed, i.e. maximally diverged)
	// execution back to the checkpoint and replay — the recovery path.
	if err := e.Restore(&cp); err != nil {
		t.Fatalf("rollback restore rejected: %v", err)
	}
	if got := finish(e, rest); !reflect.DeepEqual(got, want) {
		t.Fatalf("rollback-and-replay diverged:\n got %+v\nwant %+v", got, want)
	}
}

// randomMachine generates a small valid hDPDA by construction: states
// get random labels/ops, and successor lists are grown greedily so no
// two successors' (input, stack) labels overlap — exactly the machine's
// determinism condition — with ε-successors kept exclusive.
func randomMachine(r *rand.Rand) *HDPDA {
	inputs := []Symbol{'a', 'b', 'c'}
	stackSyms := []Symbol{'X', 'Y'}
	n := 3 + r.Intn(6)
	m := &HDPDA{Name: "rand"}
	m.States = make([]State, n)
	for i := range m.States {
		st := State{ID: StateID(i), Epsilon: r.Float64() < 0.2}
		if !st.Epsilon {
			st.Input = NewSymbolSet(inputs[r.Intn(len(inputs))])
		}
		switch r.Intn(4) {
		case 0, 1:
			st.Stack = AllSymbols()
		case 2:
			st.Stack = NewSymbolSet(stackSyms[r.Intn(len(stackSyms))])
		default:
			st.Stack = NewSymbolSet(BottomOfStack)
		}
		switch r.Intn(5) {
		case 0:
			st.Op = StackOp{HasPush: true, Push: stackSyms[r.Intn(len(stackSyms))]}
		case 1:
			st.Op = StackOp{Pop: 1}
		case 2:
			st.Op = StackOp{Pop: 1, HasPush: true, Push: stackSyms[r.Intn(len(stackSyms))]}
		}
		st.Accept = r.Float64() < 0.3
		m.States[i] = st
	}
	compatible := func(a, b *State) bool {
		if !a.Stack.Intersects(b.Stack) {
			return true
		}
		if a.Epsilon || b.Epsilon {
			return false
		}
		return !a.Input.Intersects(b.Input)
	}
	for i := range m.States {
		perm := r.Perm(n)
		for _, cand := range perm {
			if len(m.States[i].Succ) >= 3 {
				break
			}
			ok := true
			for _, have := range m.States[i].Succ {
				if !compatible(&m.States[cand], &m.States[have]) {
					ok = false
					break
				}
			}
			if ok {
				m.States[i].Succ = append(m.States[i].Succ, StateID(cand))
			}
		}
	}
	return m
}

func randomInput(r *rand.Rand, n int) []Symbol {
	syms := []Symbol{'a', 'b', 'c'}
	out := make([]Symbol, n)
	for i := range out {
		out[i] = syms[r.Intn(len(syms))]
	}
	return out
}

// TestCheckpointReplayEquivalence is the acceptance property: for
// randomized machines, inputs and checkpoint points, restore-and-resume
// is indistinguishable from uninterrupted execution.
func TestCheckpointReplayEquivalence(t *testing.T) {
	const seed = 0x5eed_a5e7
	r := rand.New(rand.NewSource(seed))
	t.Logf("seed %#x", seed)

	// Hand-built machine with known deep-stack behaviour.
	pal := PalindromeHDPDA()
	for trial := 0; trial < 40; trial++ {
		half := randomInput(r, 1+r.Intn(12))
		input := make([]Symbol, 0, 2*len(half)+1)
		input = append(input, half...)
		input = append(input, PalCenter)
		for i := len(half) - 1; i >= 0; i-- {
			input = append(input, half[i])
		}
		if r.Intn(3) == 0 && len(input) > 2 {
			input[r.Intn(len(input))] = 'b' // sometimes not a palindrome
		}
		checkReplay(t, pal, input, r.Intn(len(input)+1))
	}

	// Randomized machines.
	for mi := 0; mi < 25; mi++ {
		m := randomMachine(r)
		if err := m.Validate(); err != nil {
			t.Fatalf("generated machine invalid (generator bug): %v", err)
		}
		for trial := 0; trial < 8; trial++ {
			input := randomInput(r, 1+r.Intn(24))
			checkReplay(t, m, input, r.Intn(len(input)+1))
		}
	}
}

// TestCheckpointBufferReuse pins that a steady-state checkpoint/restore
// pair allocates nothing once its buffers are grown.
func TestCheckpointBufferReuse(t *testing.T) {
	m := PalindromeHDPDA()
	e := NewExecution(m, ExecOptions{})
	input := []Symbol{'0', '1', '0', 'c', '0', '1', '0'}
	var cp Checkpoint
	if _, _, err := drive(e, input[:3], 3); err != nil {
		t.Fatal(err)
	}
	e.Checkpoint(&cp)
	allocs := testing.AllocsPerRun(100, func() {
		e.Checkpoint(&cp)
		if err := e.Restore(&cp); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Checkpoint+Restore = %v allocs/op, want 0", allocs)
	}
}

// TestStepZeroAllocsFaultsDisabled pins the fault-injection acceptance
// criterion: a nil injector leaves the hot step path allocation-free
// (it costs exactly one nil check per activation).
func TestStepZeroAllocsFaultsDisabled(t *testing.T) {
	m := loopMachine()
	e := NewExecution(m, ExecOptions{Faults: nil})
	step := func() {
		e.Feed('a')
		e.StepEpsilon()
	}
	step()
	if allocs := testing.AllocsPerRun(1000, step); allocs != 0 {
		t.Errorf("stepping with nil FaultInjector = %v allocs/op, want 0", allocs)
	}
}

// flipInjector deterministically corrupts the k-th activation.
type flipInjector struct {
	at    int
	to    StateID
	fired int
}

func (fi *flipInjector) Activation(step int, _ StateID, _ Symbol) (Fault, bool) {
	if step != fi.at {
		return NoFault, false
	}
	fi.fired++
	f := NoFault
	f.NewState = fi.to
	return f, true
}

// TestFaultInjectionCorruptsAndRecovers exercises the full recovery
// primitive at core level: a bit flip diverts the run, the injector's
// fired signal detects it, and rollback+replay (with the fault gone)
// reproduces the clean verdict.
func TestFaultInjectionCorruptsAndRecovers(t *testing.T) {
	m := PalindromeHDPDA()
	input := []Symbol{'0', '1', 'c', '1', '0'}

	clean := NewExecution(m, ExecOptions{CollectReports: true})
	want := finish(clean, input)
	if !want.res.Accepted {
		t.Fatalf("reference run should accept: %+v", want)
	}

	inj := &flipInjector{at: 4, to: 1}
	e := NewExecution(m, ExecOptions{CollectReports: true, Faults: inj})
	var cp Checkpoint
	fed, ended, err := drive(e, input, 2)
	if ended || err != nil {
		t.Fatalf("run ended early: fed=%d err=%v", fed, err)
	}
	e.Checkpoint(&cp)
	got := finish(e, input[fed:])
	if inj.fired == 0 {
		t.Fatal("injector never fired")
	}
	if reflect.DeepEqual(got, want) {
		t.Fatalf("injected fault did not corrupt the run (flip landed on the active state?): %+v", got)
	}

	// Recovery: disarm the fault (transient upsets don't repeat), roll
	// back, replay.
	inj.at = -1
	if err := e.Restore(&cp); err != nil {
		t.Fatalf("restore rejected: %v", err)
	}
	if got := finish(e, input[fed:]); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered run diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestKillFaultSurfacesError pins the permanent-loss path: a Kill fault
// aborts the run with ErrBankDead.
func TestKillFaultSurfacesError(t *testing.T) {
	m := PalindromeHDPDA()
	e := NewExecution(m, ExecOptions{Faults: killInjector{}})
	_, _, err := drive(e, []Symbol{'0', 'c', '0'}, 3)
	if err == nil || err != ErrBankDead {
		t.Fatalf("err = %v, want ErrBankDead", err)
	}
}

type killInjector struct{}

func (killInjector) Activation(int, StateID, Symbol) (Fault, bool) {
	f := NoFault
	f.Kill = true
	return f, true
}
