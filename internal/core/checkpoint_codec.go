package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary checkpoint codec. A checkpoint that leaves the process (spilled
// to disk, shipped to a standby) travels as a fixed-layout little-endian
// record carrying its integrity seal, so the receiving side can verify
// the snapshot survived storage before resuming from it:
//
//	magic "ACP1" | Cur | Pos | EpsSeq | stack len | stack bytes |
//	Res scalars | report count | reports | Digest
//
// The encoding is canonical (one byte string per checkpoint value), so
// any byte-level corruption either fails to parse or decodes to fields
// that no longer match the digest — FuzzCheckpointRestoreRoundTrip
// pins both properties.

var errCheckpointEncoding = errors.New("core: malformed checkpoint encoding")

const checkpointMagic = "ACP1"

// MarshalBinary encodes the checkpoint, seal included. It implements
// encoding.BinaryMarshaler.
func (cp *Checkpoint) MarshalBinary() ([]byte, error) {
	size := 4 + 8*4 + len(cp.Stack) + 8*8 + 24*len(cp.Res.Reports) + 8
	out := make([]byte, 0, size)
	out = append(out, checkpointMagic...)
	put := func(v uint64) { out = binary.LittleEndian.AppendUint64(out, v) }
	putBool := func(b bool) {
		if b {
			put(1)
		} else {
			put(0)
		}
	}
	put(uint64(int64(cp.Cur)))
	put(uint64(int64(cp.Pos)))
	put(uint64(int64(cp.EpsSeq)))
	put(uint64(len(cp.Stack)))
	for _, s := range cp.Stack {
		out = append(out, byte(s))
	}
	putBool(cp.Res.Accepted)
	put(uint64(int64(cp.Res.Consumed)))
	putBool(cp.Res.Jammed)
	put(uint64(int64(cp.Res.EpsilonStalls)))
	put(uint64(int64(cp.Res.Steps)))
	put(uint64(int64(cp.Res.FinalState)))
	put(uint64(int64(cp.Res.MaxStackDepth)))
	put(uint64(int64(cp.Res.ReportCount)))
	put(uint64(len(cp.Res.Reports)))
	for _, r := range cp.Res.Reports {
		put(uint64(int64(r.Pos)))
		put(uint64(int64(r.State)))
		put(uint64(int64(r.Code)))
	}
	put(cp.Digest)
	return out, nil
}

// UnmarshalBinary decodes data into cp, reusing cp's buffers. It never
// panics on arbitrary input: structural damage returns a parse error,
// and the caller still must check Verify (or let Restore do it) — a
// record can parse cleanly yet carry corrupted field values, which only
// the seal catches. It implements encoding.BinaryUnmarshaler.
func (cp *Checkpoint) UnmarshalBinary(data []byte) error {
	if len(data) < 4 || string(data[:4]) != checkpointMagic {
		return fmt.Errorf("%w: missing magic", errCheckpointEncoding)
	}
	orig := data
	data = data[4:]
	take := func() (uint64, error) {
		if len(data) < 8 {
			return 0, fmt.Errorf("%w: truncated", errCheckpointEncoding)
		}
		v := binary.LittleEndian.Uint64(data)
		data = data[8:]
		return v, nil
	}
	takeInt := func(dst *int) error {
		v, err := take()
		*dst = int(int64(v))
		return err
	}
	takeBool := func(dst *bool) error {
		v, err := take()
		if err == nil && v > 1 {
			return fmt.Errorf("%w: boolean out of range", errCheckpointEncoding)
		}
		*dst = v == 1
		return err
	}
	var cur int
	if err := takeInt(&cur); err != nil {
		return err
	}
	cp.Cur = StateID(cur)
	if err := takeInt(&cp.Pos); err != nil {
		return err
	}
	if err := takeInt(&cp.EpsSeq); err != nil {
		return err
	}
	stackLen, err := take()
	if err != nil {
		return err
	}
	if stackLen > uint64(len(data)) {
		return fmt.Errorf("%w: stack length %d exceeds payload", errCheckpointEncoding, stackLen)
	}
	cp.Stack = cp.Stack[:0]
	for _, b := range data[:stackLen] {
		cp.Stack = append(cp.Stack, Symbol(b))
	}
	data = data[stackLen:]
	if err := takeBool(&cp.Res.Accepted); err != nil {
		return err
	}
	if err := takeInt(&cp.Res.Consumed); err != nil {
		return err
	}
	if err := takeBool(&cp.Res.Jammed); err != nil {
		return err
	}
	if err := takeInt(&cp.Res.EpsilonStalls); err != nil {
		return err
	}
	if err := takeInt(&cp.Res.Steps); err != nil {
		return err
	}
	var fin int
	if err := takeInt(&fin); err != nil {
		return err
	}
	cp.Res.FinalState = StateID(fin)
	if err := takeInt(&cp.Res.MaxStackDepth); err != nil {
		return err
	}
	if err := takeInt(&cp.Res.ReportCount); err != nil {
		return err
	}
	nReports, err := take()
	if err != nil {
		return err
	}
	if nReports > uint64(len(data))/24 {
		return fmt.Errorf("%w: report count %d exceeds payload", errCheckpointEncoding, nReports)
	}
	cp.Res.Reports = cp.Res.Reports[:0]
	for i := uint64(0); i < nReports; i++ {
		var r Report
		var st, code int
		if err := takeInt(&r.Pos); err != nil {
			return err
		}
		if err := takeInt(&st); err != nil {
			return err
		}
		if err := takeInt(&code); err != nil {
			return err
		}
		r.State = StateID(st)
		r.Code = int32(code)
		cp.Res.Reports = append(cp.Res.Reports, r)
	}
	dig, err := take()
	if err != nil {
		return err
	}
	if len(data) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", errCheckpointEncoding, len(data))
	}
	cp.Digest = dig
	// Canonicality check: decoded values that don't re-encode to the
	// original bytes (e.g. a wide integer truncated into StateID) mean
	// the record was damaged in bits the field types would silently
	// drop — reject instead of letting corruption alias a valid value.
	reenc, err := cp.MarshalBinary()
	if err != nil || !bytes.Equal(reenc, orig) {
		return fmt.Errorf("%w: non-canonical encoding", errCheckpointEncoding)
	}
	return nil
}
