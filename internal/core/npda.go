package core

import (
	"fmt"
)

// Non-deterministic pushdown automata. The paper restricts ASPEN to
// deterministic PDAs because determinism precludes stack divergence —
// simultaneous transitions never produce different stacks, which is what
// makes a single in-SRAM stack sufficient — and leaves hardware NPDAs
// as future work (§II-B). This software executor provides the reference
// semantics for that richer model: it tracks every reachable
// (state, stack) configuration, i.e. it pays exactly the stack
// divergence the hardware avoids. It exists to characterize the
// DPDA/PDA boundary (see the even-palindrome tests) and to serve as an
// oracle for machines beyond ASPEN's model.

// NPDATransition is one nondeterministic rule; unlike DPDATransition,
// any number of rules may share (From, Input, StackTop).
type NPDATransition struct {
	From     int
	Epsilon  bool
	Input    Symbol
	StackTop Symbol
	To       int
	Op       StackOp
}

// NPDA is a nondeterministic pushdown automaton.
type NPDA struct {
	Name      string
	NumStates int
	Start     int
	Accept    map[int]bool
	Trans     []NPDATransition
}

// Validate checks state ranges.
func (n *NPDA) Validate() error {
	if n.NumStates <= 0 {
		return fmt.Errorf("npda %q: no states", n.Name)
	}
	if n.Start < 0 || n.Start >= n.NumStates {
		return fmt.Errorf("npda %q: bad start %d", n.Name, n.Start)
	}
	for i, t := range n.Trans {
		if t.From < 0 || t.From >= n.NumStates || t.To < 0 || t.To >= n.NumStates {
			return fmt.Errorf("npda %q: transition %d out of range", n.Name, i)
		}
		if t.Op.HasPush && t.Op.Push == BottomOfStack {
			return fmt.Errorf("npda %q: transition %d pushes ⊥", n.Name, i)
		}
	}
	return nil
}

// IsDeterministic reports whether the transition relation satisfies the
// DPDA restriction (at most one applicable rule per configuration, and
// no ε/input overlap).
func (n *NPDA) IsDeterministic() bool {
	d := &DPDA{
		Name: n.Name, NumStates: n.NumStates, Start: n.Start,
		Accept: n.Accept,
	}
	for _, t := range n.Trans {
		d.Trans = append(d.Trans, DPDATransition(t))
	}
	return d.Validate() == nil
}

// npdaConfig is one reachable configuration; the stack is encoded as a
// byte string (⊥ at index 0) for set membership.
type npdaConfig struct {
	state int
	stack string
}

// NPDAOptions bounds the configuration search.
type NPDAOptions struct {
	// MaxConfigs bounds the live configuration set per input position
	// (0 = 1<<16). Exceeding it returns ErrConfigExplosion.
	MaxConfigs int
	// MaxStack bounds stack depth (0 = DefaultStackDepth).
	MaxStack int
}

// ErrConfigExplosion reports that the nondeterministic search exceeded
// its configuration budget — the cost wall the deterministic
// restriction exists to avoid.
var ErrConfigExplosion = fmt.Errorf("core: NPDA configuration budget exceeded")

// npdaRun is the shared stepping kernel.
type npdaRun struct {
	n        *NPDA
	bySource [][]int
	maxCfg   int
	maxStack int
	cur      map[npdaConfig]bool
	// Peak is the largest frontier observed (stack-divergence measure).
	Peak int
}

func (n *NPDA) newRun(opts NPDAOptions) (*npdaRun, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	r := &npdaRun{
		n:        n,
		bySource: make([][]int, n.NumStates),
		maxCfg:   opts.MaxConfigs,
		maxStack: opts.MaxStack,
	}
	if r.maxCfg == 0 {
		r.maxCfg = 1 << 16
	}
	if r.maxStack == 0 {
		r.maxStack = DefaultStackDepth
	}
	for i, t := range n.Trans {
		r.bySource[t.From] = append(r.bySource[t.From], i)
	}
	r.cur = map[npdaConfig]bool{{state: n.Start, stack: string([]byte{byte(BottomOfStack)})}: true}
	if err := r.closure(r.cur); err != nil {
		return nil, err
	}
	r.note()
	return r, nil
}

func (r *npdaRun) note() {
	if len(r.cur) > r.Peak {
		r.Peak = len(r.cur)
	}
}

// apply performs t's stack action on c.
func (r *npdaRun) apply(c npdaConfig, t *NPDATransition) (npdaConfig, bool) {
	stack := c.stack
	if t.Op.Pop > 0 {
		k := int(t.Op.Pop)
		if k > len(stack)-1 { // index 0 is ⊥
			return npdaConfig{}, false
		}
		stack = stack[:len(stack)-k]
	}
	if t.Op.HasPush {
		if len(stack)-1 >= r.maxStack {
			return npdaConfig{}, false
		}
		stack += string([]byte{byte(t.Op.Push)})
	}
	return npdaConfig{state: t.To, stack: stack}, true
}

// closure expands set with ε-moves to fixpoint.
func (r *npdaRun) closure(set map[npdaConfig]bool) error {
	queue := make([]npdaConfig, 0, len(set))
	for c := range set {
		queue = append(queue, c)
	}
	for len(queue) > 0 {
		c := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		top := Symbol(c.stack[len(c.stack)-1])
		for _, ti := range r.bySource[c.state] {
			t := &r.n.Trans[ti]
			if !t.Epsilon || t.StackTop != top {
				continue
			}
			nc, ok := r.apply(c, t)
			if !ok || set[nc] {
				continue
			}
			if len(set) >= r.maxCfg {
				return ErrConfigExplosion
			}
			set[nc] = true
			queue = append(queue, nc)
		}
	}
	return nil
}

// feed consumes one input symbol across the frontier.
func (r *npdaRun) feed(sym Symbol) error {
	next := map[npdaConfig]bool{}
	for c := range r.cur {
		top := Symbol(c.stack[len(c.stack)-1])
		for _, ti := range r.bySource[c.state] {
			t := &r.n.Trans[ti]
			if t.Epsilon || t.Input != sym || t.StackTop != top {
				continue
			}
			if nc, ok := r.apply(c, t); ok {
				if len(next) >= r.maxCfg {
					return ErrConfigExplosion
				}
				next[nc] = true
			}
		}
	}
	if err := r.closure(next); err != nil {
		return err
	}
	r.cur = next
	r.note()
	return nil
}

// accepted reports whether any live configuration is accepting.
func (r *npdaRun) accepted() bool {
	for c := range r.cur {
		if r.n.Accept[c.state] {
			return true
		}
	}
	return false
}

// Run decides acceptance by breadth-first search over configurations.
func (n *NPDA) Run(input []Symbol, opts NPDAOptions) (bool, error) {
	r, err := n.newRun(opts)
	if err != nil {
		return false, err
	}
	for _, sym := range input {
		if err := r.feed(sym); err != nil {
			return false, err
		}
		if len(r.cur) == 0 {
			return false, nil // every branch jammed
		}
	}
	return r.accepted(), nil
}

// MaxFrontier returns the peak number of simultaneous configurations
// while processing input — a direct measure of the stack divergence the
// DPDA restriction forbids (1 for deterministic machines).
func (n *NPDA) MaxFrontier(input []Symbol, opts NPDAOptions) (int, error) {
	r, err := n.newRun(opts)
	if err != nil {
		return 0, err
	}
	for _, sym := range input {
		if err := r.feed(sym); err != nil {
			return r.Peak, err
		}
		if len(r.cur) == 0 {
			break
		}
	}
	return r.Peak, nil
}

// EvenPalindromeNPDA builds the canonical witness that PDAs are strictly
// stronger than DPDAs: { w·reverse(w) : w ∈ {0,1}* } — even-length
// palindromes with no center marker. The machine must guess the middle,
// which requires nondeterministic stack divergence.
func EvenPalindromeNPDA() *NPDA {
	push := func(s Symbol) StackOp { return StackOp{Push: s, HasPush: true} }
	pop := StackOp{Pop: 1}
	n := &NPDA{
		Name:      "even-palindrome",
		NumStates: 3,
		Start:     0,
		Accept:    map[int]bool{2: true},
	}
	for _, top := range []Symbol{BottomOfStack, '0', '1'} {
		// Phase 1 (state 0): push the first half; guess the middle at
		// any point (including immediately: ε is a palindrome).
		n.Trans = append(n.Trans,
			NPDATransition{From: 0, Input: '0', StackTop: top, To: 0, Op: push('0')},
			NPDATransition{From: 0, Input: '1', StackTop: top, To: 0, Op: push('1')},
			NPDATransition{From: 0, Epsilon: true, StackTop: top, To: 1},
		)
	}
	// Phase 2 (state 1): pop on matches; accept on ⊥.
	n.Trans = append(n.Trans,
		NPDATransition{From: 1, Input: '0', StackTop: '0', To: 1, Op: pop},
		NPDATransition{From: 1, Input: '1', StackTop: '1', To: 1, Op: pop},
		NPDATransition{From: 1, Epsilon: true, StackTop: BottomOfStack, To: 2},
	)
	return n
}

// IsEvenPalindrome is the plain-Go oracle for EvenPalindromeNPDA.
func IsEvenPalindrome(s string) bool {
	if len(s)%2 != 0 {
		return false
	}
	for i := range s {
		if s[i] != '0' && s[i] != '1' {
			return false
		}
		if s[i] != s[len(s)-1-i] {
			return false
		}
	}
	return true
}
