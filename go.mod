module aspen

go 1.22
